package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/topology"
)

// newTestRouter builds a federation of n identical planes the way
// buildConfig does from shape flags.
func newTestRouter(t *testing.T, planes, levels, children, batch int, policy federation.Policy) *federation.Router {
	t.Helper()
	cfg := federation.Config{Policy: policy}
	for i := 0; i < planes; i++ {
		cfg.Planes = append(cfg.Planes, federation.PlaneConfig{
			Fabric: fabric.Config{
				Tree:      topology.MustNew(levels, children, children),
				BatchSize: batch,
				MaxWait:   200 * time.Microsecond,
			},
		})
	}
	r, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func newTestServer(t *testing.T, planes, levels, children, batch int) (*httptest.Server, *federation.Router) {
	t.Helper()
	router := newTestRouter(t, planes, levels, children, batch, federation.PolicyRoundRobin)
	ts := httptest.NewServer(newServer(router).routes())
	t.Cleanup(func() {
		ts.Close()
		router.Close(context.Background())
	})
	return ts, router
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestConnectReleaseStats(t *testing.T) {
	ts, _ := newTestServer(t, 1, 3, 4, 4)

	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: 33}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	if conn.ID == 0 || len(conn.Ports) == 0 || conn.Plane != "plane0" {
		t.Fatalf("connect response %+v", conn)
	}

	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Open != 1 || st.Granted != 1 || st.Offered != 1 {
		t.Errorf("federated stats after connect: %+v", st.Stats)
	}
	if len(st.Planes) != 1 || st.Planes[0].Fabric.Active != 1 || st.Planes[0].Fabric.Utilization <= 0 {
		t.Errorf("plane stats after connect: %+v", st.Planes)
	}

	var rel releaseResponse
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, &rel); code != http.StatusOK || !rel.Released {
		t.Fatalf("release status %d resp %+v", code, rel)
	}
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); code != http.StatusNotFound {
		t.Errorf("double release status %d, want 404", code)
	}
}

func TestConnectUnroutable(t *testing.T) {
	ts, _ := newTestServer(t, 1, 2, 2, 1)

	// Saturate the two upward channels of level-0 switch 1 (nodes 2, 3).
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 2, Dst: 0}, nil); code != http.StatusOK {
			t.Fatalf("connect %d status %d", i, code)
		}
	}
	var er errorResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 2, Dst: 0}, &er); code != http.StatusConflict {
		t.Fatalf("saturated connect status %d, want 409", code)
	}
	if er.Error != "unroutable" || er.FailLevel == nil || *er.FailLevel != 0 {
		t.Errorf("unroutable body %+v", er)
	}
}

// TestConnectFailsOverPlanes saturates plane0 directly and checks the
// HTTP layer lands the admission on plane1, reporting which plane took
// it.
func TestConnectFailsOverPlanes(t *testing.T) {
	ts, router := newTestServer(t, 2, 2, 2, 1)

	// Round-robin starts on plane0; saturate node 2's uplinks there
	// out-of-band so the HTTP admission must fail over.
	surf, ok := router.Plane("plane0")
	if !ok {
		t.Fatal("plane0 missing")
	}
	for i := 0; i < 2; i++ {
		if _, err := surf.Admit(context.Background(), 2, 0); err != nil {
			t.Fatal(err)
		}
	}
	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 2, Dst: 0}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	if conn.Plane != "plane1" {
		t.Errorf("connect landed on %q, want plane1", conn.Plane)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Failovers == 0 {
		t.Errorf("no failover counted: %+v", st.Stats)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, 1, 2, 4, 1)

	resp, err := http.Post(ts.URL+"/connect", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body status %d", resp.StatusCode)
	}
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: -1, Dst: 2}, nil); code != http.StatusBadRequest {
		t.Errorf("bad endpoints status %d", code)
	}
	resp, err = http.Get(ts.URL + "/connect")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /connect status %d", resp.StatusCode)
	}
}

func TestConcurrentHTTPClients(t *testing.T) {
	ts, router := newTestServer(t, 2, 3, 8, 16)

	const clients = 32
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(id int) {
			for i := 0; i < 5; i++ {
				var conn connectResponse
				code := postJSON0(ts.URL+"/connect", connectRequest{Src: (id*7 + i) % 512, Dst: (id*13 + 3*i) % 512}, &conn)
				if code == http.StatusOK {
					if rc := postJSON0(ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); rc != http.StatusOK {
						errs <- fmt.Errorf("client %d: release status %d", id, rc)
						return
					}
				} else if code != http.StatusConflict {
					errs <- fmt.Errorf("client %d: connect status %d", id, code)
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	s := router.Stats()
	if s.Offered != s.Granted+s.Rejected {
		t.Errorf("counter identity broken: %+v", s)
	}
	for _, ps := range s.Planes {
		if ps.Fabric.Active != 0 || ps.Occupancy != 0 {
			t.Errorf("plane %s not drained after all releases: %+v", ps.Name, ps)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 2, 2, 4, 4)
	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Nodes != 16 || len(hz.Planes) != 2 {
		t.Errorf("healthz body %+v", hz)
	}
	for _, p := range hz.Planes {
		if !p.Healthy || p.FaultyChannels != 0 || p.PendingRepairs != 0 {
			t.Errorf("plane health %+v", p)
		}
	}
}

// TestHealthzDegradedOnPendingRepairs pins the shutdown-satellite
// contract: /healthz reports "degraded" while any plane holds
// outstanding repair tickets, even after its channels are healed. A
// width-1 tree gives the held circuit exactly one route, so the repair
// attempt deterministically fails while the fault stands, and an
// hour-long RepairBackoff parks the ticket where healthz can see it.
func TestHealthzDegradedOnPendingRepairs(t *testing.T) {
	cfg := federation.Config{}
	for i := 0; i < 2; i++ {
		cfg.Planes = append(cfg.Planes, federation.PlaneConfig{
			Fabric: fabric.Config{
				Tree:          topology.MustNew(2, 4, 1),
				BatchSize:     1,
				MaxWait:       200 * time.Microsecond,
				RepairBackoff: time.Hour,
				RepairRetries: 8,
			},
		})
	}
	router, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(router).routes())
	t.Cleanup(func() {
		ts.Close()
		router.Close(context.Background())
	})

	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: 15}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	// Fault the held circuit's only uplink, wait out the immediate
	// (doomed) repair attempt, then heal the channels: the parked
	// ticket is now the sole degradation signal. If the heal ever
	// outraces the first repair attempt the circuit re-admits cleanly
	// and the cycle simply repeats.
	fault := faultRequest{
		Plane:    conn.Plane,
		FaultSet: faults.FaultSet{Links: []faults.LinkFault{{Level: 0, Switch: 0, Port: conn.Ports[0]}}},
	}
	repair := faultRequest{Plane: conn.Plane, Repair: true, FaultSet: fault.FaultSet}
	var hz healthzResponse
	pending := false
	for try := 0; try < 20 && !pending; try++ {
		var fr faultResponse
		if code := postJSON(t, ts.URL+"/fault", fault, &fr); code != http.StatusOK || fr.Revoked != 1 {
			t.Fatalf("fault status %d resp %+v", code, fr)
		}
		time.Sleep(10 * time.Millisecond)
		if code := postJSON(t, ts.URL+"/fault", repair, &fr); code != http.StatusOK {
			t.Fatalf("repair status %d", code)
		}
		getJSON(t, ts.URL+"/healthz", &hz)
		for _, p := range hz.Planes {
			if p.FaultyChannels != 0 {
				t.Fatalf("plane %s still has %d faulty channels after heal", p.Plane, p.FaultyChannels)
			}
			if p.PendingRepairs > 0 {
				pending = true
			}
		}
	}
	if !pending {
		t.Fatal("never captured an outstanding repair ticket in 20 cycles")
	}
	if hz.Status != "degraded" {
		t.Errorf("healthz %q with outstanding repair tickets, want degraded: %+v", hz.Status, hz)
	}
	// Releasing the owner retires the parked ticket; health recovers.
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); code != http.StatusOK {
		t.Fatalf("release status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		getJSON(t, ts.URL+"/healthz", &hz)
		if hz.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz stuck degraded after release: %+v", hz)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPprofGated(t *testing.T) {
	router := newTestRouter(t, 1, 2, 2, fabric.DefaultBatchSize, federation.PolicyHash)
	defer router.Close(context.Background())

	off := httptest.NewServer(newServer(router).routes())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -pprof: status %d, want 404", resp.StatusCode)
	}

	sv := newServer(router)
	sv.enablePprof = true
	on := httptest.NewServer(sv.routes())
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(on.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s with -pprof: status %d", path, resp.StatusCode)
		}
	}
}

// TestStatsReportsEngine drives a parallel-enabled plane through the
// HTTP layer and checks the engine choice surfaces in the per-plane
// fabric breakdown of GET /stats.
func TestStatsReportsEngine(t *testing.T) {
	cfg := federation.Config{Planes: []federation.PlaneConfig{{
		Fabric: fabric.Config{
			Tree:              topology.MustNew(3, 4, 4),
			BatchSize:         1,
			ParallelThreshold: 1,
			ParallelWorkers:   2,
			ParallelRacy:      true,
		},
	}}}
	router, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(router).routes())
	t.Cleanup(func() {
		ts.Close()
		router.Close(context.Background())
	})

	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: 63}, nil); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}
	var raw map[string]any
	getJSON(t, ts.URL+"/stats", &raw)
	planes, _ := raw["planes"].([]any)
	if len(planes) != 1 {
		t.Fatalf("stats planes = %v", raw["planes"])
	}
	fb, _ := planes[0].(map[string]any)["fabric"].(map[string]any)
	if fb["parallel_mode"] != "racy" {
		t.Errorf("parallel_mode = %v", fb["parallel_mode"])
	}
	if fb["parallel_threshold"] != float64(1) || fb["parallel_workers"] != float64(2) {
		t.Errorf("parallel config echo: threshold=%v workers=%v", fb["parallel_threshold"], fb["parallel_workers"])
	}
	if pe, _ := fb["parallel_epochs"].(float64); pe < 1 {
		t.Errorf("parallel_epochs = %v, want >= 1", fb["parallel_epochs"])
	}
}

// postJSON0 is postJSON without the testing.T, usable from goroutines.
func postJSON0(url string, body any, out any) int {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if out != nil {
		if json.NewDecoder(resp.Body).Decode(out) != nil {
			return 0
		}
	}
	return resp.StatusCode
}

// TestFaultEndpoints drives the fault-injection surface end to end on a
// single-plane federation (the plane field may be omitted): inject over
// HTTP, watch a held connection get revoked and repaired, read the
// degraded health, then heal and confirm recovery.
func TestFaultEndpoints(t *testing.T) {
	cfg := federation.Config{Planes: []federation.PlaneConfig{{
		Fabric: fabric.Config{
			Tree:          topology.MustNew(2, 4, 4),
			BatchSize:     1,
			MaxWait:       200 * time.Microsecond,
			RepairBackoff: 500 * time.Microsecond,
		},
	}}}
	router, err := federation.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(router).routes())
	t.Cleanup(func() {
		ts.Close()
		router.Close(context.Background())
	})
	surf, _ := router.Plane("plane0")

	var conn connectResponse
	if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: 0, Dst: 15}, &conn); code != http.StatusOK {
		t.Fatalf("connect status %d", code)
	}

	// Kill the link the connection climbs through; no plane named — the
	// sole plane is the implied target.
	var fr faultResponse
	body := faultRequest{FaultSet: faults.FaultSet{Links: []faults.LinkFault{
		{Level: 0, Switch: 0, Port: conn.Ports[0]},
	}}}
	if code := postJSON(t, ts.URL+"/fault", body, &fr); code != http.StatusOK {
		t.Fatalf("fault status %d", code)
	}
	if fr.Plane != "plane0" || fr.Failed != 2 || fr.Revoked != 1 {
		t.Fatalf("fault response %+v, want plane0 failed=2 revoked=1", fr)
	}

	// Degraded health while the faults stand.
	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || hz.Planes[0].FaultyChannels != 2 || hz.Planes[0].DegradedCapacity >= 1.0 {
		t.Fatalf("degraded healthz %+v", hz)
	}
	var fl faultsResponse
	getJSON(t, ts.URL+"/faults", &fl)
	if len(fl.Planes) != 1 || fl.Planes[0].FaultyChannels != 2 ||
		len(fl.Planes[0].Links) != 1 || fl.Planes[0].Links[0].Port != conn.Ports[0] {
		t.Fatalf("faults body %+v", fl)
	}

	// The repair loop re-admits the revoked connection around the fault.
	deadline := time.Now().Add(5 * time.Second)
	for surf.Stats().Repaired < 1 {
		if time.Now().After(deadline) {
			t.Fatal("repair did not complete within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if fb := st.Planes[0].Fabric; fb.Revoked != 1 || fb.Repaired != 1 || fb.FaultyChannels != 2 {
		t.Fatalf("stats after repair %+v", fb)
	}

	// Heal the whole plane (repair with an empty set); health returns to
	// ok and the handle releases.
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Repair: true}, &fr); code != http.StatusOK || fr.Repaired != 2 {
		t.Fatalf("repair-all status %d resp %+v", code, fr)
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || hz.Planes[0].DegradedCapacity != 1.0 {
		t.Fatalf("healed healthz %+v", hz)
	}
	if code := postJSON(t, ts.URL+"/release", releaseRequest{ID: conn.ID}, nil); code != http.StatusOK {
		t.Fatalf("release after repair status %d", code)
	}
}

// TestPlaneKillAndRepairOverHTTP exercises the whole-plane fault verbs:
// kill a named plane, watch traffic land on the survivor and health go
// degraded, then repair the plane and watch it rejoin.
func TestPlaneKillAndRepairOverHTTP(t *testing.T) {
	ts, _ := newTestServer(t, 2, 2, 4, 1)

	var fr faultResponse
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Plane: "plane0", Kill: true}, &fr); code != http.StatusOK {
		t.Fatalf("kill status %d", code)
	}
	if !fr.Killed || fr.Plane != "plane0" {
		t.Fatalf("kill response %+v", fr)
	}

	var hz healthzResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "degraded" || hz.Planes[0].Healthy || !hz.Planes[1].Healthy {
		t.Fatalf("healthz after kill %+v", hz)
	}
	// Admissions keep flowing, on the survivor.
	for i := 0; i < 4; i++ {
		var conn connectResponse
		if code := postJSON(t, ts.URL+"/connect", connectRequest{Src: i, Dst: 15 - i}, &conn); code != http.StatusOK {
			t.Fatalf("connect %d status %d", i, code)
		}
		if conn.Plane != "plane1" {
			t.Errorf("connect %d landed on %q, want plane1", i, conn.Plane)
		}
	}

	if code := postJSON(t, ts.URL+"/fault", faultRequest{Plane: "plane0", Repair: true}, &fr); code != http.StatusOK {
		t.Fatalf("plane repair status %d", code)
	}
	if fr.Plane != "plane0" || fr.Repaired == 0 {
		t.Fatalf("plane repair response %+v", fr)
	}
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.Status != "ok" || !hz.Planes[0].Healthy {
		t.Fatalf("healthz after plane repair %+v", hz)
	}
}

// TestFaultEndpointValidation pins the error paths: malformed JSON,
// out-of-range components, the empty injection body, and plane
// addressing mistakes.
func TestFaultEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t, 2, 2, 4, 4)

	resp, err := http.Post(ts.URL+"/fault", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed fault body status %d", resp.StatusCode)
	}

	var er errorResponse
	bad := faultRequest{Plane: "plane0", FaultSet: faults.FaultSet{Links: []faults.LinkFault{{Level: 9, Switch: 0, Port: 0}}}}
	if code := postJSON(t, ts.URL+"/fault", bad, &er); code != http.StatusBadRequest || er.Error == "" {
		t.Errorf("out-of-range fault: status %d body %+v", code, er)
	}
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Plane: "plane0"}, &er); code != http.StatusBadRequest {
		t.Errorf("empty injection: status %d", code)
	}
	// A multi-plane federation demands a plane name...
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Kill: true}, &er); code != http.StatusBadRequest {
		t.Errorf("unaddressed multi-plane fault: status %d", code)
	}
	// ...and rejects unknown ones.
	if code := postJSON(t, ts.URL+"/fault", faultRequest{Plane: "plane9", Kill: true}, &er); code != http.StatusBadRequest {
		t.Errorf("unknown plane: status %d", code)
	}
	// GET /faults on a healthy federation renders empty lists, not null.
	var raw map[string]any
	getJSON(t, ts.URL+"/faults", &raw)
	planes, ok := raw["planes"].([]any)
	if !ok || len(planes) != 2 {
		t.Fatalf("healthy /faults planes = %v", raw["planes"])
	}
	for _, p := range planes {
		if links, ok := p.(map[string]any)["links"].([]any); !ok || len(links) != 0 {
			t.Errorf("healthy /faults links = %v, want []", p.(map[string]any)["links"])
		}
	}
}

// TestBuildConfig pins the flag-vs-file resolution buildConfig performs
// for main.
func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("", 3, "least-loaded", 2, 4, 2, 8, time.Millisecond, 64, 0, "level-wise,rollback", grayFlags{}, pipelineFlags{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Planes) != 3 || cfg.Policy != federation.PolicyLeastLoaded {
		t.Fatalf("flag-built config %+v", cfg)
	}
	if cfg.Planes[0].Fabric.Tree == cfg.Planes[1].Fabric.Tree {
		t.Error("planes share one tree")
	}
	if cfg.Planes[2].Fabric.BatchSize != 8 || cfg.Planes[2].Fabric.MaxWait != time.Millisecond {
		t.Errorf("plane knobs %+v", cfg.Planes[2].Fabric)
	}
	if _, err := buildConfig("", 0, "hash", 2, 2, 2, 1, 0, 0, 0, "", grayFlags{}, pipelineFlags{}); err == nil {
		t.Error("0 planes accepted")
	}
	if _, err := buildConfig("", 1, "fastest", 2, 2, 2, 1, 0, 0, 0, "", grayFlags{}, pipelineFlags{}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := buildConfig("/does/not/exist.json", 1, "hash", 2, 2, 2, 1, 0, 0, 0, "", grayFlags{}, pipelineFlags{}); err == nil {
		t.Error("missing config file accepted")
	}
}

// getJSON fetches and decodes a GET endpoint.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
