// Command ftserve runs the fabric as an HTTP daemon: the centralized
// circuit-setup service the paper motivates, serving many concurrent
// clients over one or more independent scheduling planes behind a
// federation router.
//
// Usage:
//
//	ftserve [-addr :8080] [-planes 1] [-policy hash]
//	        [-levels 3] [-children 8] [-parents 8]
//	        [-batch 32] [-maxwait 2ms] [-queue 1024] [-timeout 0]
//	        [-scheduler level-wise,rollback] [-config fabric.json]
//	        [-validate] [-pprof]
//
// -planes builds N identical planes from the shape flags; -config loads
// a multi-plane JSON config emitted by `fttopo gen` instead ("-" reads
// stdin) and overrides the shape flags. -policy picks the plane
// selection policy (hash | round-robin | random | least-loaded).
// -validate checks the configuration and exits without serving.
// -scheduler names the admission engine in internal/sched's registry
// grammar ("family,key=value,flag"). -pprof mounts the net/http/pprof
// profiling handlers under /debug/pprof/.
//
// Endpoints (JSON over stdlib net/http):
//
//	POST /connect  {"src":0,"dst":37}   → 200 {"id":1,"src":0,"dst":37,"ports":[2,0,1],"plane":"plane0"}
//	                                      409 {"error":"unroutable","fail_level":1}
//	POST /release  {"id":1}             → 200 {"id":1,"released":true}
//	POST /fault    {"plane":"plane0","links":[{"level":0,"switch":1,"port":2}]}
//	                                    → 200 {"kind":"link","failed":2,"revoked":1} (inject faults)
//	POST /fault    {"plane":"plane0","flaky":[{"link":{...},"duty_cycle":0.5,"seed":7}]}
//	                                    → 200 {"kind":"flaky","flaky":1} (start intermittent processes)
//	POST /fault    {"plane":"plane0","degrade":{"admit_latency":"2ms","duty_cycle":0.3}}
//	                                    → 200 {"kind":"degraded"} (slow-but-alive plane)
//	POST /fault    {"plane":"plane0","repair":true,"links":[...]} → repair those components
//	POST /fault    {"plane":"plane0","repair":true} → repair the plane entirely: stop its flaky
//	               processes, heal faults, lift quarantines, clear the degraded process, re-admit
//	POST /fault    {"plane":"plane0","kill":true}   → fail the whole plane
//	GET  /faults                        → 200 per-plane fault sets, flaky-process duty-cycle
//	                                      state, quarantined channels, degraded capacity
//	GET  /stats                         → 200 federated counters + per-plane fabric breakdown
//	                                      (health score, breaker state, flap/quarantine/budget)
//	GET  /healthz                       → 200 {"status":"ok"|"degraded",...} liveness probe;
//	                                      degraded while any plane has failed channels,
//	                                      outstanding repair tickets, quarantined channels,
//	                                      an open breaker, or an injected degraded process
//
// The "plane" field may be omitted on a single-plane federation.
// SIGINT/SIGTERM drain in-flight requests, then drain every plane
// concurrently under one deadline, and exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/sched"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	planes := flag.Int("planes", 1, "number of identical planes built from the shape flags")
	policy := flag.String("policy", "hash", "plane selection policy (hash|round-robin|random|least-loaded)")
	configPath := flag.String("config", "", "multi-plane JSON config (from `fttopo gen`; \"-\" reads stdin; overrides shape flags)")
	validate := flag.Bool("validate", false, "validate the configuration and exit without serving")
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 8, "children per switch m")
	parents := flag.Int("parents", 8, "parents per switch w")
	batch := flag.Int("batch", fabric.DefaultBatchSize, "epoch flush threshold (1 disables batching)")
	maxWait := flag.Duration("maxwait", fabric.DefaultMaxWait, "max batching delay before an epoch flushes")
	queue := flag.Int("queue", fabric.DefaultQueueLimit, "admission queue bound (backpressure beyond)")
	timeout := flag.Duration("timeout", 0, "admission timeout per request (0 = none)")
	schedSpec := flag.String("scheduler", "level-wise,rollback", "admission engine spec (internal/sched registry grammar)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	var gray grayFlags
	flag.Float64Var(&gray.flapThreshold, "flap-threshold", 0, "flap-damping score threshold (0 disables damping)")
	flag.DurationVar(&gray.flapHalfLife, "flap-half-life", 0, "flap-score decay half-life (0 = fabric default)")
	flag.DurationVar(&gray.probation, "probation", 0, "quarantine probation window (0 = fabric default)")
	flag.Float64Var(&gray.repairBudgetRate, "repair-budget", 0, "repair-retry tokens per second (0 = fabric default, negative = unlimited)")
	flag.IntVar(&gray.repairBudgetBurst, "repair-budget-burst", 0, "repair-retry token burst (0 = derived)")
	flag.DurationVar(&gray.latencyBudget, "latency-budget", 0, "admission latency over which a grant counts as slow (0 disables)")
	flag.Float64Var(&gray.failoverBudgetRate, "failover-budget", 0, "failover tokens per second (0 = unlimited)")
	flag.IntVar(&gray.failoverBudgetBurst, "failover-budget-burst", 0, "failover token burst (0 = derived)")
	grayStep := flag.Duration("gray-step", defaultGrayStep, "flaky fault process clock period")
	var pipe pipelineFlags
	flag.IntVar(&pipe.deliveryPipeline, "delivery-pipeline", 0, "verdict-delivery worker spare buffers (0 = default on, negative = synchronous delivery)")
	flag.BoolVar(&pipe.drainWorker, "drain-worker", false, "dedicate a goroutine to release-ring retirement")
	flag.BoolVar(&pipe.statsSnapshots, "stats-snapshots", false, "serve fabric Stats from the lock-free seqlock snapshot")
	flag.Parse()

	cfg, err := buildConfig(*configPath, *planes, *policy, *levels, *children, *parents,
		*batch, *maxWait, *queue, *timeout, *schedSpec, gray, pipe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
	if *validate {
		fmt.Printf("ftserve: config ok: %d plane(s), policy %s, %d nodes\n",
			len(cfg.Planes), cfg.Policy, cfg.Planes[0].Fabric.Tree.Nodes())
		return
	}
	for _, info := range sched.List() {
		log.Printf("ftserve: engine %-10s %s (example: %s)", info.Family, info.Summary, info.Example)
	}
	router, err := federation.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}

	sv := newServer(router)
	sv.enablePprof = *pprofFlag
	sv.gray.step = *grayStep
	defer sv.stopGray()
	srv := &http.Server{Addr: *addr, Handler: sv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ftserve: shutdown: %v", err)
		}
		// One deadline for the whole fleet: Close drains every plane
		// concurrently, so the slowest plane bounds the wait, not the sum.
		if err := router.Close(shutdownCtx); err != nil {
			log.Printf("ftserve: fabric drain: %v", err)
		}
	}()
	log.Printf("ftserve: serving %d plane(s) of %s on %s (policy %s, %d nodes)",
		router.PlaneCount(), cfg.Planes[0].Fabric.Tree, *addr, cfg.Policy, router.Nodes())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
}

// grayFlags bundles the gray-failure knobs of the shape-flag path (a
// -config file carries its own per-plane values instead).
type grayFlags struct {
	flapThreshold       float64
	flapHalfLife        time.Duration
	probation           time.Duration
	repairBudgetRate    float64
	repairBudgetBurst   int
	latencyBudget       time.Duration
	failoverBudgetRate  float64
	failoverBudgetBurst int
}

// pipelineFlags bundles the admission-pipeline knobs of the shape-flag
// path (a -config file carries its own per-plane values instead).
type pipelineFlags struct {
	deliveryPipeline int
	drainWorker      bool
	statsSnapshots   bool
}

// buildConfig resolves the federation config: a `fttopo gen` file when
// -config is given, otherwise -planes identical planes from the shape
// flags.
func buildConfig(configPath string, planes int, policy string, levels, children, parents,
	batch int, maxWait time.Duration, queue int, timeout time.Duration, schedSpec string,
	gray grayFlags, pipe pipelineFlags) (federation.Config, error) {
	if configPath != "" {
		fc, err := federation.LoadFile(configPath)
		if err != nil {
			return federation.Config{}, err
		}
		return fc.Build()
	}
	if planes < 1 {
		return federation.Config{}, fmt.Errorf("need at least 1 plane, got %d", planes)
	}
	pol, err := federation.ParsePolicy(policy)
	if err != nil {
		return federation.Config{}, err
	}
	cfg := federation.Config{
		Policy:        pol,
		LatencyBudget: gray.latencyBudget,
		FailoverBudget: fabric.Budget{
			Rate:  gray.failoverBudgetRate,
			Burst: gray.failoverBudgetBurst,
		},
	}
	for i := 0; i < planes; i++ {
		tree, err := topology.New(levels, children, parents)
		if err != nil {
			return federation.Config{}, err
		}
		cfg.Planes = append(cfg.Planes, federation.PlaneConfig{
			Fabric: fabric.Config{
				Tree:                tree,
				SchedulerSpec:       schedSpec,
				BatchSize:           batch,
				MaxWait:             maxWait,
				QueueLimit:          queue,
				AdmitTimeout:        timeout,
				FlapThreshold:       gray.flapThreshold,
				FlapHalfLife:        gray.flapHalfLife,
				QuarantineProbation: gray.probation,
				RepairBudget: fabric.Budget{
					Rate:  gray.repairBudgetRate,
					Burst: gray.repairBudgetBurst,
				},
				DeliveryPipeline: pipe.deliveryPipeline,
				DrainWorker:      pipe.drainWorker,
				StatsSnapshots:   pipe.statsSnapshots,
			},
		})
	}
	return cfg, nil
}

// server maps HTTP requests onto the federation router, translating
// granted handles to numeric connection ids clients can release later.
type server struct {
	router *federation.Router
	// enablePprof mounts the net/http/pprof handlers in routes.
	enablePprof bool
	// gray holds the running intermittent fault processes (gray.go).
	gray *grayState

	mu     sync.Mutex
	nextID uint64
	open   map[uint64]*federation.Handle
}

func newServer(router *federation.Router) *server {
	return &server{
		router: router,
		gray:   newGrayState(defaultGrayStep),
		open:   make(map[uint64]*federation.Handle),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /connect", s.handleConnect)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("GET /faults", s.handleFaults)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.enablePprof {
		// The pprof handlers normally self-register on DefaultServeMux at
		// import time; mount them explicitly since we serve a private mux.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type connectRequest struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

type connectResponse struct {
	ID    uint64 `json:"id"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Ports []int  `json:"ports"`
	Plane string `json:"plane"`
}

type errorResponse struct {
	Error     string `json:"error"`
	FailLevel *int   `json:"fail_level,omitempty"`
}

func (s *server) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req connectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	h, err := s.router.Connect(r.Context(), req.Src, req.Dst)
	if err != nil {
		var ue *fabric.UnroutableError
		switch {
		case errors.As(err, &ue):
			lvl := ue.FailLevel
			writeJSON(w, http.StatusConflict, errorResponse{Error: "unroutable", FailLevel: &lvl})
		case errors.Is(err, fabric.ErrUnroutable):
			// A federated denial without a single conflict level (every
			// candidate plane refused).
			writeJSON(w, http.StatusConflict, errorResponse{Error: "unroutable"})
		case errors.Is(err, fabric.ErrAdmitTimeout), errors.Is(err, fabric.ErrClosed),
			errors.Is(err, federation.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; the response is best-effort.
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.open[id] = h
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, connectResponse{ID: id, Src: h.Src(), Dst: h.Dst(), Ports: h.Ports(), Plane: h.Plane()})
}

type releaseRequest struct {
	ID uint64 `json:"id"`
}

type releaseResponse struct {
	ID       uint64 `json:"id"`
	Released bool   `json:"released"`
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	h, ok := s.open[req.ID]
	delete(s.open, req.ID)
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no open connection %d", req.ID)})
		return
	}
	if err := h.Release(); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, releaseResponse{ID: req.ID, Released: true})
}

// faultRequest is the POST /fault body: a faults.FaultSet (links and
// switches) plus the plane it targets and the verb switches. With
// repair=false the set is injected; with repair=true it is healed — or,
// when the set is empty, the whole plane is repaired (flaky processes
// stopped, quarantines lifted, degraded process cleared) and
// re-admitted to candidate selection. kill=true fails the entire plane.
// flaky starts intermittent fault processes; degrade installs a
// slow-plane process. One verb per request; the plane field may be
// omitted on a single-plane federation.
type faultRequest struct {
	faults.FaultSet
	Plane   string                `json:"plane,omitempty"`
	Repair  bool                  `json:"repair,omitempty"`
	Kill    bool                  `json:"kill,omitempty"`
	Flaky   []faults.FlakyLink    `json:"flaky,omitempty"`
	Degrade *faults.DegradedPlane `json:"degrade,omitempty"`
}

type faultResponse struct {
	Plane string `json:"plane"`
	// Kind classifies what the verb did: "link", "switch", or "mixed"
	// for clean injections (by fault-set content), "repair" /
	// "plane-repair" for heals, "flaky" or "degraded" for gray-process
	// installs, "kill" for a whole-plane kill.
	Kind string `json:"kind"`
	// Failed/Revoked report an injection: channels newly taken out of
	// service and granted connections sent to the repair loop.
	Failed  int `json:"failed,omitempty"`
	Revoked int `json:"revoked,omitempty"`
	// Repaired reports a repair: channels returned to service.
	Repaired int `json:"repaired,omitempty"`
	// Flaky reports how many intermittent processes the plane now runs
	// (after a flaky install) or stopped (on plane-repair).
	Flaky int `json:"flaky,omitempty"`
	// Killed reports a whole-plane kill.
	Killed bool `json:"killed,omitempty"`
}

// targetPlane resolves the plane a fault request addresses: the named
// one, or the only one when the federation has a single plane.
func (s *server) targetPlane(name string) (string, fabric.Surface, error) {
	if name == "" {
		if s.router.PlaneCount() != 1 {
			return "", nil, fmt.Errorf("multi-plane federation: name a plane (one of %v)", s.router.PlaneNames())
		}
		name = s.router.PlaneNames()[0]
	}
	surf, ok := s.router.Plane(name)
	if !ok {
		return "", nil, fmt.Errorf("unknown plane %q (one of %v)", name, s.router.PlaneNames())
	}
	return name, surf, nil
}

func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	name, surf, err := s.targetPlane(req.Plane)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	switch {
	case req.Kill:
		if err := s.router.KillPlane(name); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: "kill", Killed: true})
	case req.Degrade != nil:
		if err := s.router.SetDegraded(name, *req.Degrade); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: "degraded"})
	case len(req.Flaky) > 0:
		running, err := s.addFlaky(name, surf, req.Flaky)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: "flaky", Flaky: running})
	case req.Repair && req.FaultSet.Empty():
		stopped := s.clearFlaky(name, surf)
		repaired := surf.FaultCount()
		if err := s.router.RepairPlane(name); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: "plane-repair", Repaired: repaired, Flaky: stopped})
	case req.Repair:
		repaired, err := surf.Repair(&req.FaultSet)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: "repair", Repaired: repaired})
	case req.FaultSet.Empty():
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty fault set (name links or switches, or set repair/kill/flaky/degrade)"})
	default:
		failed, revoked, err := surf.Fail(&req.FaultSet)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Plane: name, Kind: faultKind(&req.FaultSet), Failed: failed, Revoked: revoked})
	}
}

// planeFaults is one plane's entry in the GET /faults body.
type planeFaults struct {
	Plane            string             `json:"plane"`
	FaultyChannels   int                `json:"faulty_channels"`
	DegradedCapacity float64            `json:"degraded_capacity"`
	PendingRepairs   int64              `json:"pending_repairs"`
	Links            []faults.LinkFault `json:"links"`
	// Flaky lists the plane's running intermittent fault processes with
	// their remaining duty-cycle state; Quarantined the channels flap
	// damping currently masks; Degraded the installed slow-plane
	// process, if any.
	Flaky       []flakyStatus         `json:"flaky,omitempty"`
	Quarantined []string              `json:"quarantined,omitempty"`
	Degraded    *faults.DegradedPlane `json:"degraded,omitempty"`
}

type faultsResponse struct {
	Planes []planeFaults `json:"planes"`
}

func (s *server) handleFaults(w http.ResponseWriter, r *http.Request) {
	resp := faultsResponse{}
	for _, name := range s.router.PlaneNames() {
		surf, _ := s.router.Plane(name)
		st := surf.Stats()
		fs := surf.Faults()
		if fs.Links == nil {
			fs.Links = []faults.LinkFault{} // render [] rather than null
		}
		pf := planeFaults{
			Plane:            name,
			FaultyChannels:   st.FaultyChannels,
			DegradedCapacity: st.DegradedCapacity,
			PendingRepairs:   st.PendingRepairs,
			Links:            fs.Links,
			Flaky:            s.flakyStatuses(name),
			Degraded:         s.router.Degraded(name),
		}
		if st.Quarantined > 0 {
			pf.Quarantined = quarantinedStrings(surf)
		}
		resp.Planes = append(resp.Planes, pf)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse wraps the federated snapshot with server-side context.
type statsResponse struct {
	Nodes int `json:"nodes"`
	Open  int `json:"open"`
	federation.Stats
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := len(s.open)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{Nodes: s.router.Nodes(), Open: open, Stats: s.router.Stats()})
}

// planeHealth is one plane's entry in the healthz body.
type planeHealth struct {
	Plane            string  `json:"plane"`
	Healthy          bool    `json:"healthy"`
	Health           float64 `json:"health"`
	Breaker          string  `json:"breaker"`
	FaultyChannels   int     `json:"faulty_channels"`
	Quarantined      int     `json:"quarantined,omitempty"`
	DegradedCapacity float64 `json:"degraded_capacity"`
	PendingRepairs   int64   `json:"pending_repairs"`
}

// healthzResponse is the liveness-probe body: "ok" while every plane is
// clean, "degraded" while any plane has failed or quarantined channels,
// outstanding repair tickets, an open or half-open breaker, or an
// injected degraded process (still HTTP 200 — a degraded federation
// serves; the per-plane breakdown tells the prober what is left).
type healthzResponse struct {
	Status string        `json:"status"`
	Nodes  int           `json:"nodes"`
	Open   int           `json:"open"`
	Planes []planeHealth `json:"planes"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := len(s.open)
	s.mu.Unlock()
	st := s.router.Stats()
	resp := healthzResponse{Status: "ok", Nodes: s.router.Nodes(), Open: open}
	for _, ps := range st.Planes {
		if ps.Fabric.FaultyChannels > 0 || ps.Fabric.PendingRepairs > 0 || !ps.Healthy ||
			ps.Fabric.Quarantined > 0 || ps.Breaker != "closed" || ps.Degraded {
			resp.Status = "degraded"
		}
		resp.Planes = append(resp.Planes, planeHealth{
			Plane:            ps.Name,
			Healthy:          ps.Healthy,
			Health:           ps.Health,
			Breaker:          ps.Breaker,
			FaultyChannels:   ps.Fabric.FaultyChannels,
			Quarantined:      ps.Fabric.Quarantined,
			DegradedCapacity: ps.Fabric.DegradedCapacity,
			PendingRepairs:   ps.Fabric.PendingRepairs,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ftserve: encoding response: %v", err)
	}
}
