// Command ftserve runs the fabric manager as an HTTP daemon: the
// centralized circuit-setup service the paper motivates, serving many
// concurrent clients over a single fat tree's live link state.
//
// Usage:
//
//	ftserve [-addr :8080] [-levels 3] [-children 8] [-parents 8]
//	        [-batch 32] [-maxwait 2ms] [-queue 1024] [-timeout 0]
//	        [-scheduler level-wise,rollback] [-pprof]
//
// -scheduler names the admission engine in internal/sched's registry
// grammar ("family,key=value,flag"): sequential engines such as
// "level-wise,rollback" or "backtrack,depth=2", and the parallel engine
// via "parallel,mode=racy,workers=8" (which replaces the former
// -parallel/-workers/-racy flags). The registered engines are printed at
// startup. -pprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/.
//
// Endpoints (JSON over stdlib net/http):
//
//	POST /connect  {"src":0,"dst":37}   → 200 {"id":1,"src":0,"dst":37,"ports":[2,0,1]}
//	                                      409 {"error":"unroutable","fail_level":1}
//	POST /release  {"id":1}             → 200 {"id":1,"released":true}
//	POST /fault    {"links":[{"level":0,"switch":1,"port":2}]}
//	                                    → 200 {"failed":2,"revoked":1} (inject faults)
//	POST /fault    {"repair":true,"links":[...]} → repair those components
//	POST /fault    {"repair":true}      → repair everything
//	GET  /faults                        → 200 current fault set + degraded capacity
//	GET  /stats                         → 200 fabric counters + epoch distributions
//	                                          + engine choice + revoke/repair counters
//	GET  /healthz                       → 200 {"status":"ok"|"degraded",...} liveness probe
//
// SIGINT/SIGTERM drain in-flight requests, flush the admission queue
// through a final epoch, and exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/sched"
	"repro/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 8, "children per switch m")
	parents := flag.Int("parents", 8, "parents per switch w")
	batch := flag.Int("batch", fabric.DefaultBatchSize, "epoch flush threshold (1 disables batching)")
	maxWait := flag.Duration("maxwait", fabric.DefaultMaxWait, "max batching delay before an epoch flushes")
	queue := flag.Int("queue", fabric.DefaultQueueLimit, "admission queue bound (backpressure beyond)")
	timeout := flag.Duration("timeout", 0, "admission timeout per request (0 = none)")
	schedSpec := flag.String("scheduler", "level-wise,rollback", "admission engine spec (internal/sched registry grammar)")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	flag.Parse()

	tree, err := topology.New(*levels, *children, *parents)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
	eng, err := sched.Parse(*schedSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
	for _, info := range sched.List() {
		log.Printf("ftserve: engine %-10s %s (example: %s)", info.Family, info.Summary, info.Example)
	}
	fab, err := fabric.New(fabric.Config{
		Tree:          tree,
		SchedulerSpec: *schedSpec,
		BatchSize:     *batch,
		MaxWait:       *maxWait,
		QueueLimit:    *queue,
		AdmitTimeout:  *timeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}

	sv := newServer(fab, tree)
	sv.enablePprof = *pprofFlag
	srv := &http.Server{Addr: *addr, Handler: sv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ftserve: shutdown: %v", err)
		}
		if err := fab.Close(shutdownCtx); err != nil {
			log.Printf("ftserve: fabric drain: %v", err)
		}
	}()
	log.Printf("ftserve: serving %s on %s (engine %s, batch %d, maxwait %s)", tree, *addr, eng.Name(), *batch, *maxWait)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "ftserve: %v\n", err)
		os.Exit(1)
	}
}

// server maps HTTP requests onto one fabric manager, translating granted
// handles to numeric connection ids clients can release later.
type server struct {
	fab  *fabric.Manager
	tree *topology.Tree
	// enablePprof mounts the net/http/pprof handlers in routes.
	enablePprof bool

	mu     sync.Mutex
	nextID uint64
	open   map[uint64]*fabric.Handle
}

func newServer(fab *fabric.Manager, tree *topology.Tree) *server {
	return &server{fab: fab, tree: tree, open: make(map[uint64]*fabric.Handle)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /connect", s.handleConnect)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("POST /fault", s.handleFault)
	mux.HandleFunc("GET /faults", s.handleFaults)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.enablePprof {
		// The pprof handlers normally self-register on DefaultServeMux at
		// import time; mount them explicitly since we serve a private mux.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type connectRequest struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

type connectResponse struct {
	ID    uint64 `json:"id"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Ports []int  `json:"ports"`
}

type errorResponse struct {
	Error     string `json:"error"`
	FailLevel *int   `json:"fail_level,omitempty"`
}

func (s *server) handleConnect(w http.ResponseWriter, r *http.Request) {
	var req connectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	h, err := s.fab.Connect(r.Context(), req.Src, req.Dst)
	if err != nil {
		var ue *fabric.UnroutableError
		switch {
		case errors.As(err, &ue):
			lvl := ue.FailLevel
			writeJSON(w, http.StatusConflict, errorResponse{Error: "unroutable", FailLevel: &lvl})
		case errors.Is(err, fabric.ErrAdmitTimeout), errors.Is(err, fabric.ErrClosed):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// Client went away; the response is best-effort.
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		}
		return
	}
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.open[id] = h
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, connectResponse{ID: id, Src: h.Src(), Dst: h.Dst(), Ports: h.Ports()})
}

type releaseRequest struct {
	ID uint64 `json:"id"`
}

type releaseResponse struct {
	ID       uint64 `json:"id"`
	Released bool   `json:"released"`
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	s.mu.Lock()
	h, ok := s.open[req.ID]
	delete(s.open, req.ID)
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no open connection %d", req.ID)})
		return
	}
	if err := s.fab.Release(h); err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, releaseResponse{ID: req.ID, Released: true})
}

// faultRequest is the POST /fault body: a faults.FaultSet (links and
// switches) plus the repair switch. With repair=false the set is
// injected; with repair=true it is healed — or, when the set is empty,
// everything is healed.
type faultRequest struct {
	faults.FaultSet
	Repair bool `json:"repair,omitempty"`
}

type faultResponse struct {
	// Failed/Revoked report an injection: channels newly taken out of
	// service and granted connections sent to the repair loop.
	Failed  int `json:"failed,omitempty"`
	Revoked int `json:"revoked,omitempty"`
	// Repaired reports a repair: channels returned to service.
	Repaired int `json:"repaired,omitempty"`
}

func (s *server) handleFault(w http.ResponseWriter, r *http.Request) {
	var req faultRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Repair {
		if req.FaultSet.Empty() {
			writeJSON(w, http.StatusOK, faultResponse{Repaired: s.fab.RepairAll()})
			return
		}
		repaired, err := s.fab.Repair(&req.FaultSet)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, faultResponse{Repaired: repaired})
		return
	}
	if req.FaultSet.Empty() {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty fault set (name links or switches, or set repair)"})
		return
	}
	failed, revoked, err := s.fab.Fail(&req.FaultSet)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, faultResponse{Failed: failed, Revoked: revoked})
}

// faultsResponse is the GET /faults body: the current fault set in
// canonical link form with the capacity headline.
type faultsResponse struct {
	FaultyChannels   int                `json:"faulty_channels"`
	DegradedCapacity float64            `json:"degraded_capacity"`
	PendingRepairs   int64              `json:"pending_repairs"`
	Links            []faults.LinkFault `json:"links"`
}

func (s *server) handleFaults(w http.ResponseWriter, r *http.Request) {
	st := s.fab.Stats()
	fs := s.fab.Faults()
	if fs.Links == nil {
		fs.Links = []faults.LinkFault{} // render [] rather than null
	}
	writeJSON(w, http.StatusOK, faultsResponse{
		FaultyChannels:   st.FaultyChannels,
		DegradedCapacity: st.DegradedCapacity,
		PendingRepairs:   st.PendingRepairs,
		Links:            fs.Links,
	})
}

// statsResponse wraps the fabric snapshot with server-side context; the
// embedded fabric.Stats shares its field layout with ftsched -json.
type statsResponse struct {
	Tree string `json:"tree"`
	Open int    `json:"open"`
	fabric.Stats
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := len(s.open)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsResponse{Tree: s.tree.String(), Open: open, Stats: s.fab.Stats()})
}

// healthzResponse is the liveness-probe body: "ok" on a healthy fabric,
// "degraded" while any channel is failed (still HTTP 200 — a degraded
// fabric serves; capacity tells the prober how much is left).
type healthzResponse struct {
	Status           string  `json:"status"`
	Tree             string  `json:"tree"`
	Open             int     `json:"open"`
	QueueDepth       int     `json:"queue_depth"`
	FaultyChannels   int     `json:"faulty_channels,omitempty"`
	DegradedCapacity float64 `json:"degraded_capacity"`
	PendingRepairs   int64   `json:"pending_repairs,omitempty"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := len(s.open)
	s.mu.Unlock()
	st := s.fab.Stats()
	status := "ok"
	if st.FaultyChannels > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:           status,
		Tree:             s.tree.String(),
		Open:             open,
		QueueDepth:       st.QueueDepth,
		FaultyChannels:   st.FaultyChannels,
		DegradedCapacity: st.DegradedCapacity,
		PendingRepairs:   st.PendingRepairs,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ftserve: encoding response: %v", err)
	}
}
