package main

// Gray-failure operations: the server-side home of the intermittent
// fault processes. Clean faults (POST /fault with links/switches) flip
// state once and are done; flaky links have to be *driven* — something
// must advance the fabric clock and apply each step's up/down diff.
// That something is the stepper goroutine below: one per server,
// started lazily on the first flaky injection, stepping every plane's
// Flapper at a fixed cadence and feeding the diffs through the plane's
// ordinary Fail/Repair surface, where flap damping then sees them.

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
)

// defaultGrayStep is the flaky-process clock period when -gray-step is
// not given: fast enough to exercise flap damping interactively, slow
// enough to stay negligible next to admission work.
const defaultGrayStep = 5 * time.Millisecond

// grayState is the server's registry of running intermittent fault
// processes, one Flapper per plane, driven by a single stepper.
type grayState struct {
	mu       sync.Mutex
	flappers map[string]*faults.Flapper
	step     time.Duration
	started  bool
	stop     chan struct{}
	done     chan struct{}
}

func newGrayState(step time.Duration) *grayState {
	if step <= 0 {
		step = defaultGrayStep
	}
	return &grayState{
		flappers: make(map[string]*faults.Flapper),
		step:     step,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// addFlaky validates and registers flaky-link processes on a plane and
// makes sure the stepper is running. Returns how many processes the
// plane now runs.
func (s *server) addFlaky(name string, surf fabric.Surface, procs []faults.FlakyLink) (int, error) {
	tree := surf.Tree()
	for i := range procs {
		if err := procs[i].Validate(tree); err != nil {
			return 0, err
		}
	}
	s.gray.mu.Lock()
	defer s.gray.mu.Unlock()
	fl := s.gray.flappers[name]
	if fl == nil {
		fl = faults.NewFlapper(procs)
		s.gray.flappers[name] = fl
	} else {
		fl.Add(procs)
	}
	if !s.gray.started {
		s.gray.started = true
		go s.stepGray()
	}
	return len(fl.Procs()), nil
}

// clearFlaky drops a plane's flaky processes and heals whatever they
// currently hold down (the whole-plane repair verb calls it before
// RepairPlane, which then lifts the quarantine too).
func (s *server) clearFlaky(name string, surf fabric.Surface) int {
	s.gray.mu.Lock()
	fl := s.gray.flappers[name]
	delete(s.gray.flappers, name)
	s.gray.mu.Unlock()
	if fl == nil {
		return 0
	}
	if ds := fl.DownSet(); !ds.Empty() {
		surf.Repair(ds) // nolint:errcheck — the set came from the tree
	}
	return len(fl.Procs())
}

// flakyStatus is one process's row in GET /faults: the process itself
// plus its remaining duty-cycle state (current up/down and the step the
// plane's clock has reached).
type flakyStatus struct {
	faults.FlakyLink
	Down bool   `json:"down"`
	Step uint64 `json:"step"`
}

// flakyStatuses snapshots a plane's running processes.
func (s *server) flakyStatuses(name string) []flakyStatus {
	s.gray.mu.Lock()
	defer s.gray.mu.Unlock()
	fl := s.gray.flappers[name]
	if fl == nil {
		return nil
	}
	procs := fl.Procs()
	out := make([]flakyStatus, len(procs))
	for i := range procs {
		out[i] = flakyStatus{FlakyLink: procs[i], Down: fl.Down(i), Step: fl.Steps()}
	}
	return out
}

// stepGray is the stepper goroutine: every gray-step it advances each
// plane's Flapper one step and applies the transition diff through the
// plane's Fail/Repair surface. Injection errors cannot happen (every
// process validated against its tree on the way in); a closed plane
// simply rejects the injection, which is fine — the processes die with
// the fabric.
func (s *server) stepGray() {
	defer close(s.gray.done)
	t := time.NewTicker(s.gray.step)
	defer t.Stop()
	for {
		select {
		case <-s.gray.stop:
			return
		case <-t.C:
		}
		s.gray.mu.Lock()
		for name, fl := range s.gray.flappers {
			surf, ok := s.router.Plane(name)
			if !ok {
				continue
			}
			fail, repair := fl.Step()
			if fail != nil {
				surf.Fail(fail) // nolint:errcheck
			}
			if repair != nil {
				surf.Repair(repair) // nolint:errcheck
			}
		}
		s.gray.mu.Unlock()
	}
}

// stopGray halts the stepper (tests and shutdown; idempotent).
func (s *server) stopGray() {
	s.gray.mu.Lock()
	started := s.gray.started
	select {
	case <-s.gray.stop:
		s.gray.mu.Unlock()
		return
	default:
	}
	close(s.gray.stop)
	s.gray.mu.Unlock()
	if started {
		<-s.gray.done
	}
}

// faultKind classifies a clean fault set for the response body.
func faultKind(fs *faults.FaultSet) string {
	switch {
	case len(fs.Links) > 0 && len(fs.Switches) > 0:
		return "mixed"
	case len(fs.Switches) > 0:
		return "switch"
	default:
		return "link"
	}
}

// quarantinedStrings renders a plane's quarantined channels for the
// /faults body (channel coordinates as linkstate strings).
func quarantinedStrings(surf fabric.Surface) []string {
	q := surf.Quarantined()
	if len(q) == 0 {
		return []string{}
	}
	out := make([]string, len(q))
	for i, c := range q {
		out[i] = fmt.Sprint(c)
	}
	return out
}
