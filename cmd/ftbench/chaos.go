package main

// The -chaos mode layers a seeded fault/repair schedule on top of the
// -fabric closed-loop generator: while clients churn, an injector
// alternates between failing a uniform random fraction p of links and
// repairing everything, and the run reports the schedulability ratio
// and repair latency as a function of p (EXPERIMENTS.md E17).

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/topology"
)

// chaosBenchConfig parameterizes a failure-rate sweep: each rate runs
// one closed-loop bench of cfg.Duration with a fault/repair cycle of
// period Cycle (fail at p on odd ticks, repair-all on even ticks).
type chaosBenchConfig struct {
	fabricBenchConfig
	Rates []float64     // link failure rates p to sweep
	Cycle time.Duration // fault/repair alternation period
}

// chaosResult is the outcome of one rate point.
type chaosResult struct {
	Rate    float64
	Counts  loopCounts
	Elapsed time.Duration
	Stats   fabric.Stats
	Admit   admitDist // client-observed admission latency percentiles
}

// parseRates parses a comma-separated failure-rate list ("0,0.01,0.1").
func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p, err := strconv.ParseFloat(f, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("chaos: bad failure rate %q (want 0..1)", f)
		}
		rates = append(rates, p)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("chaos: empty failure-rate list")
	}
	return rates, nil
}

// chaosBench sweeps the configured failure rates and prints one summary
// row per rate.
func chaosBench(out io.Writer, cfg chaosBenchConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(cfg.Rates) == 0 {
		return fmt.Errorf("chaos: no failure rates to sweep")
	}
	if cfg.Cycle <= 0 {
		return fmt.Errorf("chaos: need positive cycle (%s)", cfg.Cycle)
	}
	if cfg.Timeout <= 0 {
		// Degraded epochs can briefly wedge admission; never let a
		// chaos client block forever.
		cfg.Timeout = 100 * time.Millisecond
	}
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos %s  clients=%d open=%d duration=%s cycle=%s timeout=%s\n",
		tree, cfg.Clients, cfg.Open, cfg.Duration, cfg.Cycle, cfg.Timeout)
	fmt.Fprintf(out, "  %-6s %-6s %-9s %-22s %-20s %-18s %s\n",
		"rate", "sched", "adm/s", "revoked/repaired/fail", "repair ms p50/p95", "admit us p50/p99", "timeouts")
	for i, p := range cfg.Rates {
		res, err := chaosRun(cfg, p, cfg.Seed+int64(i)*7919)
		if err != nil {
			return fmt.Errorf("chaos rate %g: %w", p, err)
		}
		s := res.Stats
		fmt.Fprintf(out, "  %-6.3f %-6.3f %-9.0f %-22s %-20s %-18s %d\n",
			p, res.Counts.schedulability(),
			float64(res.Counts.offered())/res.Elapsed.Seconds(),
			fmt.Sprintf("%d/%d/%d", s.Revoked, s.Repaired, s.RepairFailed+s.RepairAborted),
			fmt.Sprintf("%.2f/%.2f", s.RepairLatencyMS.P50, s.RepairLatencyMS.P95),
			fmt.Sprintf("%.1f/%.1f", res.Admit.AdmitP50us, res.Admit.AdmitP99us),
			res.Counts.timedOut)
	}
	return nil
}

// chaosRun executes one rate point: closed-loop churn with a seeded
// injector alternating Fail(Uniform(p)) and RepairAll every cfg.Cycle.
func chaosRun(cfg chaosBenchConfig, p float64, seed int64) (chaosResult, error) {
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return chaosResult{}, err
	}
	fcfg := fabric.Config{
		Tree: tree, SchedulerSpec: cfg.Scheduler, BatchSize: cfg.Batch, MaxWait: cfg.MaxWait,
		AdmitTimeout:      cfg.Timeout,
		ParallelThreshold: cfg.Parallel, ParallelWorkers: cfg.Workers, ParallelRacy: cfg.Racy,
		ParallelMode: cfg.Mode, ParallelSteal: cfg.Steal,
	}
	cfg.Pipeline.apply(&fcfg)
	fab, err := fabric.New(fcfg)
	if err != nil {
		return chaosResult{}, err
	}

	stop := make(chan struct{})
	var injWg sync.WaitGroup
	if p > 0 {
		injWg.Add(1)
		go func() {
			defer injWg.Done()
			tick := time.NewTicker(cfg.Cycle)
			defer tick.Stop()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				if n%2 == 0 {
					// Errors here mean the manager is closing; the
					// sweep is ending, so just stop injecting.
					if _, _, err := fab.Fail(faults.Uniform(tree, p, seed+int64(n))); err != nil {
						return
					}
				} else {
					fab.RepairAll()
				}
			}
		}()
	}

	rec := newLatRecorder(cfg.Clients)
	counts, elapsed, loopErr := closedLoop(fab, tree, cfg.fabricBenchConfig, true, rec)
	close(stop)
	injWg.Wait()
	s := fab.Stats()
	if err := fab.Close(context.Background()); err != nil && loopErr == nil {
		loopErr = err
	}
	if loopErr != nil {
		return chaosResult{}, loopErr
	}
	return chaosResult{Rate: p, Counts: counts, Elapsed: elapsed, Stats: s, Admit: rec.dist()}, nil
}
