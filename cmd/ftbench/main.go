// Command ftbench regenerates the paper's complete evaluation: Figure
// 9(a)–(d), Table 1, the Section 4 complexity comparison, and (unless
// -paper-only) the ablations and extensions indexed in DESIGN.md.
//
// Usage:
//
//	ftbench [-perms 100] [-seed 1] [-paper-only] [-csv dir]
//
// With -csv, each figure/table is additionally written as a CSV file into
// the given directory for external plotting.
//
// With -cpuprofile / -memprofile, the run writes pprof profiles (CPU
// sampled across the whole run, heap snapshotted at exit after a final
// GC) for `go tool pprof`; they compose with every mode, so the fabric
// closed-loop generator can be profiled the same way as the paper suite.
//
// With -fabric, ftbench instead runs a closed-loop load generator against
// the concurrent serving layer (internal/fabric) and reports
// admissions/sec; the -fabric-* flags size the tree, the client pool, and
// the epoch batching. -fabric-parallel enables the parallel epoch engine,
// with -fabric-par-mode selecting deterministic, racy, or subtree-shard
// arbitration (-fabric-steal adds work stealing to shard mode).
//
// With -chaos, the closed-loop generator additionally injects a seeded
// fault/repair schedule mid-run and sweeps the -chaos-rates link failure
// rates, reporting the schedulability ratio and repair latency at each
// rate (EXPERIMENTS.md E17).
//
// With -gray, ftbench runs the gray-failure resilience sweep
// (EXPERIMENTS.md E21): seeded *flaky* links flap up and down on a fixed
// clock while closed-loop clients run, exercising flap damping, the
// repair retry budget, and reuse-cost-aware repair placement; each
// -gray-rates point runs with reuse-cost scoring off and on over
// bit-identical churn, and a final two-plane point injects a
// slow-but-alive DegradedPlane process and reports the health score and
// breaker state.
//
// With -churn, ftbench runs the arrival/departure churn comparison
// (EXPERIMENTS.md E20): one seeded workload of circuit arrivals with
// exponential lifetimes served by batch-replay, incremental, and
// incremental+reuse-cost scheduling, reporting schedulability, grants
// per second of scheduler time, and route churn per epoch.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/report"
)

func main() {
	perms := flag.Int("perms", experiments.DefaultPermutations, "random permutations per test point (paper: 100)")
	seed := flag.Int64("seed", 1, "root seed for all workloads")
	paperOnly := flag.Bool("paper-only", false, "run only the paper's own evaluation (Figure 9, Table 1)")
	workers := flag.Int("workers", 4, "parallel workers for the sweeps and extensions")
	only := flag.String("only", "", "run only suite components whose id contains this (e.g. e12, a1, fig9, table1)")
	csvDir := flag.String("csv", "", "directory to additionally write CSV files into")
	jsonDir := flag.String("json", "", "directory to additionally write JSON files into")
	fabricMode := flag.Bool("fabric", false, "run the closed-loop fabric load generator instead of the paper suite")
	fabricLevels := flag.Int("fabric-levels", 3, "fabric bench: switch levels l")
	fabricChildren := flag.Int("fabric-children", 8, "fabric bench: children per switch m")
	fabricParents := flag.Int("fabric-parents", 8, "fabric bench: parents per switch w")
	fabricClients := flag.Int("fabric-clients", 64, "fabric bench: concurrent closed-loop clients")
	fabricBatch := flag.Int("fabric-batch", fabric.DefaultBatchSize, "fabric bench: epoch flush threshold (1 disables batching)")
	fabricOpen := flag.Int("fabric-open", 4, "fabric bench: circuits each client holds open")
	fabricMaxWait := flag.Duration("fabric-maxwait", 500*time.Microsecond, "fabric bench: epoch flush timer")
	fabricDuration := flag.Duration("fabric-duration", 2*time.Second, "fabric bench: run length")
	fabricSched := flag.String("fabric-scheduler", "", "fabric bench: admission engine spec (internal/sched registry grammar; \"\" = fabric default)")
	fabricParallel := flag.Int("fabric-parallel", 0, "fabric bench: epoch size at which scheduling goes parallel (0 = always sequential)")
	fabricWorkers := flag.Int("fabric-workers", 0, "fabric bench: parallel engine workers (0 = GOMAXPROCS)")
	fabricRacy := flag.Bool("fabric-racy", false, "fabric bench: lock-free racy engine mode instead of deterministic")
	fabricParMode := flag.String("fabric-par-mode", "", "fabric bench: parallel arbitration mode (deterministic, racy, or shard; \"\" = deterministic unless -fabric-racy)")
	fabricSteal := flag.Bool("fabric-steal", false, "fabric bench: shard mode only — steal whole shards from busy workers")
	fabricTimeout := flag.Duration("fabric-timeout", 0, "fabric bench: per-Connect admission timeout; a wedged server fails the run (0 = wait forever)")
	planesFlag := flag.String("planes", "", "run the federation sweep over these comma-separated plane counts (e.g. \"1,2,4\") with the -fabric-* shape/client flags")
	planePolicies := flag.String("plane-policies", "round-robin", "federation sweep: comma-separated plane selection policies")
	planesConfig := flag.String("planes-config", "", "federation sweep: run one point from this multi-plane JSON config (from `fttopo gen`) instead of the -planes grid")
	planesJSON := flag.String("planes-json", "", "federation sweep: also write the results as JSON to this file")
	churnMode := flag.Bool("churn", false, "run the arrival/departure churn comparison: batch-replay vs incremental (delta-epoch) scheduling on one seeded workload")
	churnRate := flag.Int("churn-rate", 16, "churn: fresh arrivals per epoch")
	churnLife := flag.Float64("churn-life", 8, "churn: mean circuit lifetime in epochs (exponential)")
	churnEpochs := flag.Int("churn-epochs", 200, "churn: epochs to simulate")
	churnReuse := flag.Int("churn-reuse", 4, "churn: reuse-cost cap K for the incremental+reuse discipline (0 skips it)")
	churnJSON := flag.String("churn-json", "", "churn: also write the comparison as JSON to this file")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection sweep: fabric closed-loop clients plus a seeded mid-run fault/repair schedule")
	chaosRates := flag.String("chaos-rates", "0,0.01,0.05,0.1", "chaos: comma-separated link failure rates p to sweep")
	chaosCycle := flag.Duration("chaos-cycle", 20*time.Millisecond, "chaos: fault/repair alternation period")
	grayMode := flag.Bool("gray", false, "run the gray-failure sweep: seeded flaky links flapping mid-run, with flap damping, retry budgets, and a degraded-plane federation point")
	grayRates := flag.String("gray-rates", "0,0.02,0.05,0.1", "gray: comma-separated flaky link selection rates p to sweep")
	grayDuty := flag.Float64("gray-duty", 0.5, "gray: per-step down probability of each flaky link")
	grayStep := flag.Duration("gray-step", 2*time.Millisecond, "gray: flaky process clock period")
	grayReuse := flag.Int("gray-reuse", 4, "gray: reuse-cost cap K for the second arm (0 skips it)")
	grayThreshold := flag.Float64("gray-threshold", 3, "gray: flap-damping quarantine threshold")
	grayProbation := flag.Duration("gray-probation", 100*time.Millisecond, "gray: quarantine probation window")
	grayBudget := flag.Float64("gray-budget", 200, "gray: repair retry budget tokens per second")
	grayBurst := flag.Int("gray-burst", 64, "gray: repair retry budget burst")
	grayJSON := flag.String("gray-json", "", "gray: also write the sweep results as JSON to this file")
	admitMode := flag.Bool("admit", false, "run the admission-pipeline sweep: admission latency p50/p95/p99 and allocs/op over epoch sizes × client counts")
	admitEpochs := flag.String("admit-epochs", "1,8,64", "admit sweep: comma-separated epoch flush thresholds")
	admitClients := flag.String("admit-clients", "1,16,64", "admit sweep: comma-separated closed-loop client counts")
	admitJSON := flag.String("admit-json", "", "admit sweep: also write the results as JSON to this file")
	fabricDelivery := flag.Int("fabric-delivery-pipeline", 0, "fabric: delivery-pipeline spare buffers (0 = default on, negative = synchronous delivery on the flusher)")
	fabricDrainWorker := flag.Bool("fabric-drain-worker", false, "fabric: dedicated release-ring drain goroutine")
	fabricStatsSnapshots := flag.Bool("fabric-stats-snapshots", false, "fabric: serve Stats from lock-free seqlock snapshots")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (post-GC, at exit) to this file")
	flag.Parse()

	pipeline := admitPipelineConfig{
		DeliveryPipeline: *fabricDelivery,
		DrainWorker:      *fabricDrainWorker,
		StatsSnapshots:   *fabricStatsSnapshots,
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls; route every exit through this so the
	// CPU profile is flushed and the heap profile written.
	exit := func(code int) {
		stopProfiles()
		os.Exit(code)
	}

	if *planesFlag != "" || *planesConfig != "" {
		fcfg := fedBenchConfig{
			fabricBenchConfig: fabricBenchConfig{
				Levels: *fabricLevels, Children: *fabricChildren, Parents: *fabricParents,
				Clients: *fabricClients, Batch: *fabricBatch, Open: *fabricOpen,
				MaxWait: *fabricMaxWait, Duration: *fabricDuration, Seed: *seed,
				Timeout: *fabricTimeout, Scheduler: *fabricSched,
				Pipeline: pipeline,
			},
			ConfigPath: *planesConfig,
			JSONPath:   *planesJSON,
			Policies:   splitList(*planePolicies),
		}
		if *planesFlag != "" {
			if fcfg.PlaneCounts, err = parsePlaneCounts(*planesFlag); err == nil {
				err = federationBench(os.Stdout, fcfg)
			}
		} else {
			err = federationBench(os.Stdout, fcfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *churnMode {
		err := churnBench(os.Stdout, churnBenchConfig{
			Levels: *fabricLevels, Children: *fabricChildren, Parents: *fabricParents,
			Rate: *churnRate, Life: *churnLife, Epochs: *churnEpochs,
			Reuse: *churnReuse, Seed: *seed, JSONPath: *churnJSON,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *grayMode {
		var rates []float64
		if rates, err = parseRates(*grayRates); err == nil {
			err = grayBench(os.Stdout, grayBenchConfig{
				fabricBenchConfig: fabricBenchConfig{
					Levels: *fabricLevels, Children: *fabricChildren, Parents: *fabricParents,
					Clients: *fabricClients, Batch: *fabricBatch, Open: *fabricOpen,
					MaxWait: *fabricMaxWait, Duration: *fabricDuration, Seed: *seed,
					Timeout:  *fabricTimeout,
					Pipeline: pipeline,
				},
				Rates: rates, Duty: *grayDuty, Step: *grayStep, Reuse: *grayReuse,
				FlapThreshold: *grayThreshold, Probation: *grayProbation,
				BudgetRate: *grayBudget, BudgetBurst: *grayBurst,
				JSONPath: *grayJSON,
			})
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *admitMode {
		var epochs, clients []int
		if epochs, err = parseIntList(*admitEpochs); err == nil {
			if clients, err = parseIntList(*admitClients); err == nil {
				err = admitBench(os.Stdout, admitBenchConfig{
					Levels: *fabricLevels, Children: *fabricChildren, Parents: *fabricParents,
					EpochSizes: epochs, ClientCounts: clients,
					Open: *fabricOpen, MaxWait: *fabricMaxWait,
					Duration: *fabricDuration, Timeout: *fabricTimeout,
					Seed: *seed, Pipeline: pipeline, JSONPath: *admitJSON,
				})
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *fabricMode || *chaosMode {
		cfg := fabricBenchConfig{
			Levels: *fabricLevels, Children: *fabricChildren, Parents: *fabricParents,
			Clients: *fabricClients, Batch: *fabricBatch, Open: *fabricOpen,
			MaxWait: *fabricMaxWait, Duration: *fabricDuration, Seed: *seed,
			Timeout:   *fabricTimeout,
			Scheduler: *fabricSched,
			Parallel:  *fabricParallel, Workers: *fabricWorkers, Racy: *fabricRacy,
			Mode: *fabricParMode, Steal: *fabricSteal,
			Pipeline: pipeline,
		}
		if *chaosMode {
			var rates []float64
			if rates, err = parseRates(*chaosRates); err == nil {
				err = chaosBench(os.Stdout, chaosBenchConfig{
					fabricBenchConfig: cfg, Rates: rates, Cycle: *chaosCycle,
				})
			}
		} else {
			err = fabricBench(os.Stdout, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
		exit(0)
	}

	if *csvDir != "" {
		if err := writeFiles(*csvDir, ".csv", *perms, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
	}
	if *jsonDir != "" {
		if err := writeFiles(*jsonDir, ".json", *perms, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
			exit(1)
		}
	}

	violations, err := experiments.RunSuite(os.Stdout, experiments.SuiteConfig{
		Permutations:   *perms,
		Seed:           *seed,
		SkipExtensions: *paperOnly,
		Workers:        *workers,
		Only:           *only,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftbench: %v\n", err)
		exit(1)
	}
	if len(violations) > 0 {
		exit(2)
	}
	exit(0)
}

// startProfiles enables the requested pprof outputs and returns a stop
// function that finishes the CPU profile and writes the heap profile;
// every exit path must call it so the profiles are complete on disk.
func startProfiles(cpu, mem string) (func(), error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuF = f
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if mem == "" {
			return
		}
		f, err := os.Create(mem)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle the live heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: memprofile: %v\n", err)
		}
	}, nil
}

// writeFiles exports the core evaluation tables in the given format
// (".csv" or ".json").
func writeFiles(dir, ext string, perms int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, tb *report.Table) error {
		f, err := os.Create(filepath.Join(dir, name+ext))
		if err != nil {
			return err
		}
		defer f.Close()
		if ext == ".json" {
			return tb.WriteJSON(f)
		}
		return tb.WriteCSV(f)
	}
	a, err := experiments.Fig9a(perms, seed)
	if err != nil {
		return err
	}
	b, err := experiments.Fig9b(perms, seed)
	if err != nil {
		return err
	}
	c, err := experiments.Fig9c(perms, seed)
	if err != nil {
		return err
	}
	if err := write("fig9a", a.Table()); err != nil {
		return err
	}
	if err := write("fig9b", b.Table()); err != nil {
		return err
	}
	if err := write("fig9c", c.Table()); err != nil {
		return err
	}
	if err := write("fig9d", experiments.Fig9dTable(experiments.Fig9d(a, b, c))); err != nil {
		return err
	}
	t1, err := experiments.Table1(seed)
	if err != nil {
		return err
	}
	return write("table1", experiments.Table1Table(t1))
}
