package main

// The churn workload (EXPERIMENTS.md E20): a connection population with
// arrivals and exponential-ish lifetimes, served epoch by epoch under
// three disciplines over identical offered load —
//
//   batch-replay        every epoch tears down all held circuits and
//                       re-schedules survivors + arrivals from scratch
//                       (what a non-incremental batch scheduler must do
//                       to serve a churning population; survivors whose
//                       re-admission fails are dropped)
//   incremental         delta epochs: held grants carry forward in the
//                       link state, only real departures are swept
//   incremental+reuse   delta epochs with the reconfiguration-cost-
//                       aware port score (core.Options.ReuseCost)
//
// Reported per discipline: schedulability of fresh arrivals, scheduling
// throughput (fresh grants per second of scheduler wall time), and
// route churn per epoch — routes physically torn down plus routes
// established. Replay is scored honestly: a survivor re-granted its
// identical route counts as zero churn; only route moves, drops, and
// real arrivals/departures count.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/linkstate"
	"repro/internal/topology"
)

type churnBenchConfig struct {
	Levels, Children, Parents int
	Rate                      int     // fresh arrivals per epoch
	Life                      float64 // mean circuit lifetime, epochs
	Epochs                    int
	Reuse                     int // reuse-cost cap K for the third discipline
	Seed                      int64
	JSONPath                  string // optional results file
}

type churnArrival struct {
	src, dst int
	life     int // lifetime in epochs if granted
}

// churnResult is one discipline's scorecard (also the JSON row).
type churnResult struct {
	Discipline         string  `json:"discipline"`
	Scheduler          string  `json:"scheduler"`
	Offered            int     `json:"offered"`
	Granted            int     `json:"granted"`
	Schedulability     float64 `json:"schedulability"`
	SchedMS            float64 `json:"sched_ms"`
	GrantsPerSec       float64 `json:"grants_per_sec"`
	TornRoutes         int     `json:"torn_routes"`
	EstablishedRoutes  int     `json:"established_routes"`
	RouteChurnPerEpoch float64 `json:"route_churn_per_epoch"`
	SurvivorsDropped   int     `json:"survivors_dropped"`
	FinalHeld          int     `json:"final_held"`
}

type churnReport struct {
	Levels   int           `json:"levels"`
	Children int           `json:"children"`
	Parents  int           `json:"parents"`
	Rate     int           `json:"rate"`
	Life     float64       `json:"life_epochs"`
	Epochs   int           `json:"epochs"`
	Reuse    int           `json:"reuse_cost"`
	Seed     int64         `json:"seed"`
	Results  []churnResult `json:"results"`
}

// churnSchedule precomputes the offered workload so every discipline
// sees the same arrivals with the same lifetimes.
func churnSchedule(tree *topology.Tree, cfg churnBenchConfig) [][]churnArrival {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := tree.Nodes()
	sched := make([][]churnArrival, cfg.Epochs)
	for e := range sched {
		arr := make([]churnArrival, cfg.Rate)
		for i := range arr {
			life := int(rng.ExpFloat64()*cfg.Life) + 1
			arr[i] = churnArrival{src: rng.Intn(n), dst: rng.Intn(n), life: life}
		}
		sched[e] = arr
	}
	return sched
}

type churnCircuit struct {
	src, dst int
	ports    []int
	expires  int // epoch at which the circuit departs
}

func samePorts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runChurnReplay serves the schedule batch-replay style: each epoch the
// whole held set is torn down and re-scheduled together with the fresh
// arrivals against an empty-again link state.
func runChurnReplay(tree *topology.Tree, sched [][]churnArrival) churnResult {
	lw := &core.LevelWise{Opts: core.Options{Rollback: true}}
	st := linkstate.New(tree)
	sc := core.NewScratch()
	res := churnResult{Discipline: "batch-replay", Scheduler: lw.Name()}
	var held []churnCircuit
	var reqs []core.Request
	var elapsed time.Duration
	for epoch, arrivals := range sched {
		// Departures leave; everything else is torn down for the rebuild.
		survivors := held[:0]
		for _, c := range held {
			if c.expires <= epoch {
				if len(c.ports) > 0 {
					res.TornRoutes++
				}
				core.ReleaseRoute(st, c.src, c.dst, c.ports, nil)
				continue
			}
			survivors = append(survivors, c)
		}
		held = survivors
		for i := range held {
			core.ReleaseRoute(st, held[i].src, held[i].dst, held[i].ports, nil)
		}
		reqs = reqs[:0]
		for i := range held {
			reqs = append(reqs, core.Request{Src: held[i].src, Dst: held[i].dst})
		}
		for _, a := range arrivals {
			reqs = append(reqs, core.Request{Src: a.src, Dst: a.dst})
		}
		res.Offered += len(arrivals)
		start := time.Now()
		out := lw.ScheduleInto(st, reqs, sc)
		elapsed += time.Since(start)
		// Survivors first (same order): moved or dropped routes are churn,
		// identical re-grants are free.
		next := held[:0]
		for i := range held {
			o := &out.Outcomes[i]
			if !o.Granted {
				if len(held[i].ports) > 0 {
					res.TornRoutes++
				}
				res.SurvivorsDropped++
				continue
			}
			if !samePorts(held[i].ports, o.Ports) {
				if len(held[i].ports) > 0 {
					res.TornRoutes++
				}
				if len(o.Ports) > 0 {
					res.EstablishedRoutes++
				}
				held[i].ports = append(held[i].ports[:0], o.Ports...)
			}
			next = append(next, held[i])
		}
		nsurv := len(held)
		held = next
		for i, a := range arrivals {
			o := &out.Outcomes[nsurv+i]
			if !o.Granted {
				continue
			}
			res.Granted++
			if len(o.Ports) > 0 {
				res.EstablishedRoutes++
			}
			held = append(held, churnCircuit{src: a.src, dst: a.dst,
				ports: append([]int(nil), o.Ports...), expires: epoch + a.life})
		}
	}
	res.FinalHeld = len(held)
	finishChurn(&res, len(sched), elapsed)
	return res
}

// runChurnIncremental serves the schedule with delta epochs: held routes
// stay allocated, departures and arrivals flow through
// ScheduleDeltaInto, and reuseCost > 0 adds the cost-aware port score.
func runChurnIncremental(tree *topology.Tree, sched [][]churnArrival, reuseCost int) churnResult {
	lw := &core.LevelWise{Opts: core.Options{Rollback: true, Incremental: true, ReuseCost: reuseCost}}
	st := linkstate.New(tree)
	sc := core.NewScratch()
	name := "incremental"
	if reuseCost > 0 {
		name = fmt.Sprintf("incremental+reuse-cost=%d", reuseCost)
	}
	res := churnResult{Discipline: name, Scheduler: lw.Name()}
	var held []churnCircuit
	var reqs []core.Request
	var deps []core.Departure
	var elapsed time.Duration
	for epoch, arrivals := range sched {
		deps = deps[:0]
		survivors := held[:0]
		for _, c := range held {
			if c.expires <= epoch {
				deps = append(deps, core.Departure{Src: c.src, Dst: c.dst, Ports: c.ports})
				continue
			}
			survivors = append(survivors, c)
		}
		held = survivors
		reqs = reqs[:0]
		for _, a := range arrivals {
			reqs = append(reqs, core.Request{Src: a.src, Dst: a.dst})
		}
		res.Offered += len(arrivals)
		start := time.Now()
		out := lw.ScheduleDeltaInto(st, reqs, deps, sc)
		elapsed += time.Since(start)
		res.TornRoutes += out.Torn
		for i, a := range arrivals {
			o := &out.Outcomes[i]
			if !o.Granted {
				continue
			}
			res.Granted++
			if len(o.Ports) > 0 {
				res.EstablishedRoutes++
			}
			held = append(held, churnCircuit{src: a.src, dst: a.dst,
				ports: append([]int(nil), o.Ports...), expires: epoch + a.life})
		}
	}
	res.FinalHeld = len(held)
	finishChurn(&res, len(sched), elapsed)
	return res
}

func finishChurn(r *churnResult, epochs int, elapsed time.Duration) {
	r.SchedMS = float64(elapsed) / float64(time.Millisecond)
	if r.Offered > 0 {
		r.Schedulability = float64(r.Granted) / float64(r.Offered)
	}
	if elapsed > 0 {
		r.GrantsPerSec = float64(r.Granted) / elapsed.Seconds()
	}
	if epochs > 0 {
		r.RouteChurnPerEpoch = float64(r.TornRoutes+r.EstablishedRoutes) / float64(epochs)
	}
}

// churnBench runs the three disciplines over one shared schedule and
// writes the comparison table (and the optional JSON report).
func churnBench(w io.Writer, cfg churnBenchConfig) error {
	if cfg.Rate < 1 || cfg.Epochs < 1 || cfg.Life <= 0 {
		return fmt.Errorf("churn: need rate >= 1, epochs >= 1, life > 0 (got rate=%d epochs=%d life=%v)",
			cfg.Rate, cfg.Epochs, cfg.Life)
	}
	if cfg.Reuse < 0 {
		return fmt.Errorf("churn: negative reuse-cost %d", cfg.Reuse)
	}
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return err
	}
	sched := churnSchedule(tree, cfg)
	report := churnReport{
		Levels: cfg.Levels, Children: cfg.Children, Parents: cfg.Parents,
		Rate: cfg.Rate, Life: cfg.Life, Epochs: cfg.Epochs, Reuse: cfg.Reuse, Seed: cfg.Seed,
	}
	report.Results = append(report.Results, runChurnReplay(tree, sched))
	report.Results = append(report.Results, runChurnIncremental(tree, sched, 0))
	if cfg.Reuse > 0 {
		report.Results = append(report.Results, runChurnIncremental(tree, sched, cfg.Reuse))
	}

	fmt.Fprintf(w, "churn: FT(%d,%d,%d) rate=%d/epoch life=%.1f epochs=%d seed=%d\n\n",
		cfg.Levels, cfg.Children, cfg.Parents, cfg.Rate, cfg.Life, cfg.Epochs, cfg.Seed)
	fmt.Fprintf(w, "%-26s %9s %8s %12s %11s %11s %8s\n",
		"discipline", "sched/ms", "admit%", "grants/sec", "churn/epoch", "torn+estab", "dropped")
	for _, r := range report.Results {
		fmt.Fprintf(w, "%-26s %9.2f %7.1f%% %12.0f %11.2f %5d+%-5d %8d\n",
			r.Discipline, r.SchedMS, 100*r.Schedulability, r.GrantsPerSec,
			r.RouteChurnPerEpoch, r.TornRoutes, r.EstablishedRoutes, r.SurvivorsDropped)
	}
	base, inc := report.Results[0], report.Results[1]
	if inc.RouteChurnPerEpoch > 0 {
		fmt.Fprintf(w, "\nroute-churn ratio (batch-replay / incremental): %.2fx\n",
			base.RouteChurnPerEpoch/inc.RouteChurnPerEpoch)
	}

	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}
