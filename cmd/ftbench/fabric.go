package main

// The -fabric mode turns ftbench into a closed-loop load generator for
// the serving layer: N concurrent clients drive Connect/Release against
// an in-process fabric manager and the offered admission rate is
// measured, the serving-path analogue of extension E4's churn model
// (random endpoints, connections held across subsequent operations).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/topology"
)

// fabricBenchConfig parameterizes one closed-loop run.
type fabricBenchConfig struct {
	Levels, Children, Parents int
	Clients                   int           // concurrent closed-loop clients
	Batch                     int           // epoch flush threshold
	MaxWait                   time.Duration // epoch flush timer
	Open                      int           // circuits each client holds (FIFO churn)
	Duration                  time.Duration
	Timeout                   time.Duration // per-Connect admission timeout (0 = wait forever)
	Seed                      int64
	Scheduler                 string // admission engine spec ("" = fabric default)
	Parallel                  int    // epoch size at which scheduling goes parallel (0 = off)
	Workers                   int    // parallel engine workers (0 = GOMAXPROCS)
	Racy                      bool   // lock-free racy mode instead of deterministic
	Mode                      string // parallel arbitration mode ("" = deterministic/racy per Racy)
	Steal                     bool   // shard mode: steal whole shards from busy workers
	Pipeline                  admitPipelineConfig
}

func (cfg fabricBenchConfig) validate() error {
	if cfg.Clients <= 0 || cfg.Open <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("fabric bench: need positive clients (%d), open (%d), duration (%s)",
			cfg.Clients, cfg.Open, cfg.Duration)
	}
	return nil
}

// loopCounts aggregates the client-side view of one closed-loop run.
type loopCounts struct {
	admitted, denied, timedOut uint64
}

// offered is the total admission attempts the clients made.
func (c loopCounts) offered() uint64 { return c.admitted + c.denied + c.timedOut }

// schedulability is the fraction of attempts that were granted — the
// paper's schedulability ratio, measured at the client.
func (c loopCounts) schedulability() float64 {
	if c.offered() == 0 {
		return 0
	}
	return float64(c.admitted) / float64(c.offered())
}

// closedLoop drives cfg.Clients concurrent FIFO-churn clients against
// fab until cfg.Duration elapses. In strict mode (chaotic=false) any
// unexpected client error — including ErrAdmitTimeout when
// cfg.Timeout is set — aborts the run and is returned, so a wedged
// server fails the run instead of hanging. With chaotic=true (faults
// being injected mid-run) timeouts are counted and revocation-related
// release errors are tolerated, since both are expected degraded-mode
// outcomes. A non-nil rec captures per-Connect wall time (the admission
// round-trip each client observes) for tail-latency reporting; it must
// have at least cfg.Clients lanes.
func closedLoop(fab *fabric.Manager, tree *topology.Tree, cfg fabricBenchConfig, chaotic bool, rec *latRecorder) (loopCounts, time.Duration, error) {
	var admitted, denied, timedOut atomic.Uint64
	deadline := time.Now().Add(cfg.Duration)
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			var held []*fabric.Handle
			defer func() {
				for _, h := range held {
					if err := h.Release(); err != nil && !chaotic && errs[id] == nil {
						errs[id] = fmt.Errorf("client %d final release: %w", id, err)
					}
				}
			}()
			for time.Now().Before(deadline) {
				// Churn: keep Open long-lived circuits, retiring the
				// oldest before each new admission.
				for len(held) >= cfg.Open {
					if err := held[0].Release(); err != nil && !chaotic {
						errs[id] = fmt.Errorf("client %d release: %w", id, err)
						return
					}
					held = held[1:]
				}
				src, dst := rng.Intn(tree.Nodes()), rng.Intn(tree.Nodes())
				var began time.Time
				if rec != nil {
					began = time.Now()
				}
				h, err := fab.Connect(context.Background(), src, dst)
				if rec != nil {
					rec.record(id, time.Since(began))
				}
				switch {
				case err == nil:
					admitted.Add(1)
					held = append(held, h)
				case errors.Is(err, fabric.ErrUnroutable) || errors.Is(err, fabric.ErrUnroutableDegraded):
					denied.Add(1)
				case errors.Is(err, fabric.ErrAdmitTimeout) && chaotic:
					timedOut.Add(1)
				default:
					errs[id] = fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return loopCounts{}, elapsed, err
		}
	}
	return loopCounts{admitted.Load(), denied.Load(), timedOut.Load()}, elapsed, nil
}

// fabricBench runs the closed-loop load generator and prints a summary.
func fabricBench(out io.Writer, cfg fabricBenchConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return err
	}
	fcfg := fabric.Config{
		Tree: tree, SchedulerSpec: cfg.Scheduler, BatchSize: cfg.Batch, MaxWait: cfg.MaxWait,
		AdmitTimeout:      cfg.Timeout,
		ParallelThreshold: cfg.Parallel, ParallelWorkers: cfg.Workers, ParallelRacy: cfg.Racy,
		ParallelMode: cfg.Mode, ParallelSteal: cfg.Steal,
	}
	cfg.Pipeline.apply(&fcfg)
	fab, err := fabric.New(fcfg)
	if err != nil {
		return err
	}

	rec := newLatRecorder(cfg.Clients)
	counts, elapsed, loopErr := closedLoop(fab, tree, cfg, false, rec)
	if err := fab.Close(context.Background()); err != nil && loopErr == nil {
		loopErr = err
	}
	if loopErr != nil {
		return loopErr
	}

	s := fab.Stats()
	ad := rec.dist()
	fmt.Fprintf(out, "fabric %s  clients=%d epoch=%d maxwait=%s open=%d duration=%s\n",
		tree, cfg.Clients, cfg.Batch, cfg.MaxWait, cfg.Open, cfg.Duration)
	fmt.Fprintf(out, "  admissions/sec %.0f  (offered %d, granted %d, rejected %d, blocking %.2f%%)\n",
		float64(counts.offered())/elapsed.Seconds(), s.Offered, s.Granted, s.Rejected,
		100*float64(s.Rejected)/float64(max(1, s.Offered)))
	fmt.Fprintf(out, "  epochs %d  size mean=%.1f p95=%.0f  latency ms p50=%.3f p95=%.3f p99=%.3f\n",
		s.Epochs, s.EpochSize.Mean, s.EpochSize.P95,
		s.EpochLatencyMS.P50, s.EpochLatencyMS.P95, s.EpochLatencyMS.P99)
	fmt.Fprintf(out, "  admit us p50=%.1f p95=%.1f p99=%.1f\n",
		ad.AdmitP50us, ad.AdmitP95us, ad.AdmitP99us)
	if cfg.Parallel > 0 {
		fmt.Fprintf(out, "  engine %s threshold=%d  epochs sequential=%d parallel=%d\n",
			s.ParallelMode+fmt.Sprintf("/w%d", s.ParallelWorkers), s.ParallelThreshold,
			s.SequentialEpochs, s.ParallelEpochs)
	}
	return nil
}
