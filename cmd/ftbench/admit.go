package main

// The -admit mode sweeps the serving layer's admission round-trip cost
// across epoch sizes × client counts: the closed-loop generator of
// -fabric, but instrumented for tail latency (per-Connect wall time,
// p50/p95/p99) and allocation rate (process-wide mallocs per admission),
// the two signals the admission-pipeline work targets. Epoch size 1 is
// the round-trip-dominated regime — every request pays the full
// enqueue→flusher→verdict→wakeup cycle — while large epochs amortize
// it; the sweep records both so BENCH_admission.json carries the
// before/after of the control path, not the scheduler.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/fabric"
	"repro/internal/stats"
	"repro/internal/topology"
)

// parseIntList parses a comma-separated list of positive ints
// ("1,8,64") — the -admit-epochs / -admit-clients grammar.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad list entry %q (want positive ints)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty int list %q", s)
	}
	return out, nil
}

// latRing retains the most recent admission-latency samples of one
// client, in microseconds. Fixed capacity, preallocated: recording must
// not allocate mid-run, or the allocs/op column would measure the
// harness instead of the fabric.
type latRing struct {
	buf  []float64
	n    int // valid samples
	next int // write cursor
}

func (r *latRing) add(us float64) {
	r.buf[r.next] = us
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// latRecorder is one lane per client, so recording is contention-free;
// dist merges the lanes after the run.
type latRecorder struct {
	lanes []latRing
}

// latSamplesPerClient bounds each client's retained samples; percentiles
// summarize the most recent window, which is the steady state.
const latSamplesPerClient = 4096

func newLatRecorder(clients int) *latRecorder {
	lr := &latRecorder{lanes: make([]latRing, clients)}
	for i := range lr.lanes {
		lr.lanes[i].buf = make([]float64, latSamplesPerClient)
	}
	return lr
}

// record stores one Connect round-trip for client id.
func (lr *latRecorder) record(id int, d time.Duration) {
	lr.lanes[id].add(float64(d) / float64(time.Microsecond))
}

// admitDist summarizes the merged admission-latency samples, in
// microseconds — the tail-latency fields every sweep mode emits.
type admitDist struct {
	N          int     `json:"admit_samples,omitempty"`
	AdmitP50us float64 `json:"admit_p50_us"`
	AdmitP95us float64 `json:"admit_p95_us"`
	AdmitP99us float64 `json:"admit_p99_us"`
}

// dist merges every lane and computes the percentiles. A nil recorder
// yields the zero dist, so call sites can thread "no recording" through.
func (lr *latRecorder) dist() admitDist {
	if lr == nil {
		return admitDist{}
	}
	var merged []float64
	for i := range lr.lanes {
		r := &lr.lanes[i]
		merged = append(merged, r.buf[:r.n]...)
	}
	if len(merged) == 0 {
		return admitDist{}
	}
	return admitDist{
		N:          len(merged),
		AdmitP50us: stats.Percentile(merged, 50),
		AdmitP95us: stats.Percentile(merged, 95),
		AdmitP99us: stats.Percentile(merged, 99),
	}
}

// admitPipelineConfig bundles the admission-pipeline knobs every
// fabric-constructing bench mode forwards into fabric.Config.
type admitPipelineConfig struct {
	DeliveryPipeline int  // fabric.Config.DeliveryPipeline (negative disables)
	DrainWorker      bool // dedicated release-ring drain goroutine
	StatsSnapshots   bool // lock-free seqlock Stats
}

func (p admitPipelineConfig) apply(c *fabric.Config) {
	c.DeliveryPipeline = p.DeliveryPipeline
	c.DrainWorker = p.DrainWorker
	c.StatsSnapshots = p.StatsSnapshots
}

// admitBenchConfig parameterizes the admission-pipeline sweep.
type admitBenchConfig struct {
	Levels, Children, Parents int
	EpochSizes                []int // epoch flush thresholds to sweep
	ClientCounts              []int // closed-loop client pools to sweep
	Open                      int
	MaxWait                   time.Duration
	Duration                  time.Duration
	Timeout                   time.Duration
	Seed                      int64
	Pipeline                  admitPipelineConfig
	JSONPath                  string
}

// admitResult is one (epoch size, clients) point.
type admitResult struct {
	EpochSize        int     `json:"epoch_size"`
	Clients          int     `json:"clients"`
	Offered          uint64  `json:"offered"`
	Granted          uint64  `json:"granted"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	// NsPerOp is wall time per admission (1e9 / admissions_per_sec),
	// comparable to BENCH_fabric.json's ns_per_op column.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is process-wide heap allocations per admission over
	// the run — serving-path allocations (the granted Handle, map
	// bookkeeping) plus nothing from the enqueue hot path when the
	// ticket pool holds.
	AllocsPerOp float64 `json:"allocs_per_op"`
	admitDist
}

// admitReport is the JSON body the sweep writes (BENCH_admission.json
// derives from two of these, before and after).
type admitReport struct {
	Tree       string        `json:"tree"`
	Open       int           `json:"open"`
	MaxWaitUS  int64         `json:"max_wait_us"`
	Duration   string        `json:"duration"`
	Seed       int64         `json:"seed"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []admitResult `json:"results"`
}

// admitBench runs the epoch-size × client-count grid and prints one row
// per point.
func admitBench(out io.Writer, cfg admitBenchConfig) error {
	if cfg.Open <= 0 || cfg.Duration <= 0 {
		return fmt.Errorf("admit bench: need positive open (%d) and duration (%s)", cfg.Open, cfg.Duration)
	}
	if len(cfg.EpochSizes) == 0 || len(cfg.ClientCounts) == 0 {
		return fmt.Errorf("admit bench: empty epoch-size or client list")
	}
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return err
	}
	report := admitReport{
		Tree: tree.String(), Open: cfg.Open,
		MaxWaitUS: cfg.MaxWait.Microseconds(), Duration: cfg.Duration.String(),
		Seed: cfg.Seed, NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(out, "admit sweep %s  open=%d maxwait=%s duration=%s\n",
		tree, cfg.Open, cfg.MaxWait, cfg.Duration)
	for _, epoch := range cfg.EpochSizes {
		for _, clients := range cfg.ClientCounts {
			res, err := admitPoint(tree, cfg, epoch, clients)
			if err != nil {
				return err
			}
			report.Results = append(report.Results, res)
			fmt.Fprintf(out, "  epoch=%-3d clients=%-3d  %8.0f adm/sec  %8.0f ns/op  %6.2f allocs/op  admit us p50=%.1f p95=%.1f p99=%.1f\n",
				epoch, clients, res.AdmissionsPerSec, res.NsPerOp, res.AllocsPerOp,
				res.AdmitP50us, res.AdmitP95us, res.AdmitP99us)
		}
	}
	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&report); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}

// admitPoint measures one grid point: a fresh manager, a closed loop of
// the given shape, and the malloc delta across the timed region.
func admitPoint(tree *topology.Tree, cfg admitBenchConfig, epoch, clients int) (admitResult, error) {
	fcfg := fabric.Config{
		Tree: tree, BatchSize: epoch, MaxWait: cfg.MaxWait, AdmitTimeout: cfg.Timeout,
	}
	cfg.Pipeline.apply(&fcfg)
	fab, err := fabric.New(fcfg)
	if err != nil {
		return admitResult{}, err
	}
	lcfg := fabricBenchConfig{
		Levels: cfg.Levels, Children: cfg.Children, Parents: cfg.Parents,
		Clients: clients, Batch: epoch, Open: cfg.Open,
		MaxWait: cfg.MaxWait, Duration: cfg.Duration, Seed: cfg.Seed,
		Timeout: cfg.Timeout,
	}
	rec := newLatRecorder(clients)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	counts, elapsed, loopErr := closedLoop(fab, tree, lcfg, false, rec)
	runtime.ReadMemStats(&after)
	s := fab.Stats()
	if err := fab.Close(context.Background()); err != nil && loopErr == nil {
		loopErr = err
	}
	if loopErr != nil {
		return admitResult{}, loopErr
	}
	ops := counts.offered()
	if ops == 0 {
		return admitResult{}, fmt.Errorf("admit bench: epoch=%d clients=%d made no admissions", epoch, clients)
	}
	perSec := float64(ops) / elapsed.Seconds()
	return admitResult{
		EpochSize: epoch, Clients: clients,
		Offered: s.Offered, Granted: s.Granted,
		AdmissionsPerSec: perSec,
		NsPerOp:          1e9 / perSec,
		AllocsPerOp:      float64(after.Mallocs-before.Mallocs) / float64(ops),
		admitDist:        rec.dist(),
	}, nil
}
