package main

// The -gray mode is the gray-failure resilience sweep (EXPERIMENTS.md
// E21): instead of the -chaos mode's clean fail/repair-all cycles, a
// seeded set of *flaky* links flaps up and down every step while
// closed-loop clients churn, exercising flap damping, the repair retry
// budget, and reuse-cost-aware repair placement together. Each flaky
// rate runs two arms over bit-identical churn (the fault processes are
// counter-mode hashes, so both arms replay the same transitions): delta
// epochs with reuse-cost scoring off, and with it on. The headline
// numbers per point:
//
//   - unaccounted: revoked − repaired − failed − aborted, which must be
//     0 — no connection may vanish, no matter how the links flap;
//   - repair attempts vs the budget bound revoked + burst + rate·T;
//   - the repaired-on-held-trunk fraction, which the reuse arm must
//     raise (repairs steered toward standing configuration);
//   - flap/quarantine event counts and route churn per epoch.
//
// A final federated point injects a DegradedPlane (slow-but-alive)
// process into a two-plane router and reports the EWMA health score,
// breaker state, and failover accounting under a latency budget.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/federation"
	"repro/internal/topology"
)

// grayBenchConfig parameterizes the gray-failure sweep.
type grayBenchConfig struct {
	fabricBenchConfig
	Rates         []float64     // flaky link selection probabilities to sweep
	Duty          float64       // per-step down probability of a selected link
	Step          time.Duration // flapper clock period
	Reuse         int           // reuse-cost cap K for the reuse arm (0 skips the arm)
	FlapThreshold float64       // damping threshold (0 disables damping)
	Probation     time.Duration // quarantine probation window
	BudgetRate    float64       // repair-retry tokens per second
	BudgetBurst   int           // repair-retry token burst
	LatencyBudget time.Duration // slow-grant threshold for the federated point
	JSONPath      string        // also write the results as JSON here
}

// grayArm is one (rate, reuse-cost) cell of the sweep.
type grayArm struct {
	ReuseCost   int     `json:"reuse_cost"`
	Sched       float64 `json:"schedulability"`
	AdmitPerSec float64 `json:"admissions_per_sec"`
	Granted     uint64  `json:"granted"`
	Revoked     uint64  `json:"revoked"`
	Repaired    uint64  `json:"repaired"`
	// Lost is the terminal repair-failure count — connections the
	// flapping actually cost, as opposed to ones merely re-routed.
	Lost    uint64 `json:"lost"`
	Aborted uint64 `json:"aborted"`
	// Unaccounted must be zero: every revocation resolves.
	Unaccounted int64 `json:"unaccounted"`
	// Attempts vs the retry-budget bound revoked + burst + rate·T.
	RepairAttempts  uint64  `json:"repair_attempts"`
	AttemptBound    float64 `json:"attempt_bound"`
	BudgetExhausted uint64  `json:"budget_exhausted"`
	FlapEvents      uint64  `json:"flap_events"`
	QuarantineEvts  uint64  `json:"quarantine_events"`
	Quarantined     int     `json:"quarantined"`
	// RepairedOnHeldTrunk / Repaired: the reuse-cost placement signal.
	RepairedOnHeldTrunk uint64  `json:"repaired_on_held_trunk"`
	HeldTrunkFraction   float64 `json:"held_trunk_fraction"`
	ChurnPerEpoch       float64 `json:"churn_per_epoch"`
	ElapsedSec          float64 `json:"elapsed_sec"`
	admitDist
}

// grayPoint is one flaky rate with both arms.
type grayPoint struct {
	Rate  float64   `json:"rate"`
	Flaky int       `json:"flaky_links"`
	Arms  []grayArm `json:"arms"`
}

// graySlowPlane is the federated degraded-plane point.
type graySlowPlane struct {
	Offered         uint64  `json:"offered"`
	Granted         uint64  `json:"granted"`
	Failovers       uint64  `json:"failovers"`
	BudgetExhausted uint64  `json:"failover_budget_exhausted"`
	DegradedHealth  float64 `json:"degraded_plane_health"`
	DegradedBreaker string  `json:"degraded_plane_breaker"`
	HealthyHealth   float64 `json:"healthy_plane_health"`
}

// grayReport is the JSON body (BENCH_grayfault.json).
type grayReport struct {
	Tree      string        `json:"tree"`
	Duty      float64       `json:"duty_cycle"`
	Step      string        `json:"step"`
	Threshold float64       `json:"flap_threshold"`
	Budget    fabric.Budget `json:"repair_budget"`
	Points    []grayPoint   `json:"points"`
	SlowPlane graySlowPlane `json:"slow_plane"`
}

// grayBench sweeps the flaky rates, prints a row per (rate, arm), and
// runs the federated slow-plane point.
func grayBench(out io.Writer, cfg grayBenchConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if len(cfg.Rates) == 0 {
		return fmt.Errorf("gray: no flaky rates to sweep")
	}
	if cfg.Duty <= 0 || cfg.Duty >= 1 {
		return fmt.Errorf("gray: duty cycle %g outside (0, 1)", cfg.Duty)
	}
	if cfg.Step <= 0 {
		return fmt.Errorf("gray: need positive step (%s)", cfg.Step)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 100 * time.Millisecond // flapping epochs must not wedge clients
	}
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return err
	}
	rep := grayReport{
		Tree: tree.String(), Duty: cfg.Duty, Step: cfg.Step.String(),
		Threshold: cfg.Threshold(), Budget: fabric.Budget{Rate: cfg.BudgetRate, Burst: cfg.BudgetBurst},
	}
	fmt.Fprintf(out, "gray %s  clients=%d open=%d duration=%s step=%s duty=%g threshold=%g budget=%g/%d\n",
		tree, cfg.Clients, cfg.Open, cfg.Duration, cfg.Step, cfg.Duty,
		cfg.Threshold(), cfg.BudgetRate, cfg.BudgetBurst)
	fmt.Fprintf(out, "  %-6s %-6s %-6s %-22s %-7s %-16s %-9s %-10s %s\n",
		"rate", "reuse", "sched", "revoked/repair/lost", "unacct", "attempts/bound", "quar", "heldfrac", "churn/epoch")

	arms := []int{0}
	if cfg.Reuse > 0 {
		arms = append(arms, cfg.Reuse)
	}
	for i, p := range cfg.Rates {
		point := grayPoint{Rate: p}
		seed := cfg.Seed + int64(i)*104729
		point.Flaky = len(faults.FlakyLinks(tree, p, cfg.Duty, seed))
		for _, reuse := range arms {
			arm, err := grayRun(cfg, p, seed, reuse)
			if err != nil {
				return fmt.Errorf("gray rate %g reuse %d: %w", p, reuse, err)
			}
			point.Arms = append(point.Arms, arm)
			fmt.Fprintf(out, "  %-6.3f %-6d %-6.3f %-22s %-7d %-16s %-9s %-10.3f %.2f\n",
				p, reuse, arm.Sched,
				fmt.Sprintf("%d/%d/%d", arm.Revoked, arm.Repaired, arm.Lost),
				arm.Unaccounted,
				fmt.Sprintf("%d/%.0f", arm.RepairAttempts, arm.AttemptBound),
				fmt.Sprintf("%d(%d)", arm.QuarantineEvts, arm.Quarantined),
				arm.HeldTrunkFraction, arm.ChurnPerEpoch)
			if arm.Unaccounted != 0 {
				return fmt.Errorf("gray rate %g reuse %d: %d unaccounted connections", p, reuse, arm.Unaccounted)
			}
			if float64(arm.RepairAttempts) > arm.AttemptBound {
				return fmt.Errorf("gray rate %g reuse %d: %d repair attempts exceed budget bound %.0f",
					p, reuse, arm.RepairAttempts, arm.AttemptBound)
			}
		}
		rep.Points = append(rep.Points, point)
	}

	slow, err := graySlowPlaneRun(cfg)
	if err != nil {
		return fmt.Errorf("gray slow-plane: %w", err)
	}
	rep.SlowPlane = slow
	fmt.Fprintf(out, "  slow-plane: granted %d/%d, failovers %d (budget cut %d), degraded health %.3f (%s), healthy %.3f\n",
		slow.Granted, slow.Offered, slow.Failovers, slow.BudgetExhausted,
		slow.DegradedHealth, slow.DegradedBreaker, slow.HealthyHealth)

	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "  wrote %s\n", cfg.JSONPath)
	}
	return nil
}

// Threshold returns the effective damping threshold (default 3).
func (cfg grayBenchConfig) Threshold() float64 {
	if cfg.FlapThreshold > 0 {
		return cfg.FlapThreshold
	}
	return 3
}

// grayRun executes one (rate, reuse) arm: closed-loop churn while a
// flapper drives the seeded flaky processes, then a full heal + drain
// and the accounting snapshot.
func grayRun(cfg grayBenchConfig, p float64, seed int64, reuse int) (grayArm, error) {
	tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
	if err != nil {
		return grayArm{}, err
	}
	fcfg := fabric.Config{
		Tree: tree, BatchSize: cfg.Batch, MaxWait: cfg.MaxWait,
		AdmitTimeout:        cfg.Timeout,
		Incremental:         true,
		ReuseCost:           reuse,
		FlapThreshold:       cfg.Threshold(),
		QuarantineProbation: cfg.Probation,
		RepairBudget:        fabric.Budget{Rate: cfg.BudgetRate, Burst: cfg.BudgetBurst},
	}
	cfg.Pipeline.apply(&fcfg)
	fab, err := fabric.New(fcfg)
	if err != nil {
		return grayArm{}, err
	}

	start := time.Now()
	fl := faults.NewFlapper(faults.FlakyLinks(tree, p, cfg.Duty, seed))
	stop := make(chan struct{})
	var injWg sync.WaitGroup
	if len(fl.Procs()) > 0 {
		injWg.Add(1)
		go func() {
			defer injWg.Done()
			tick := time.NewTicker(cfg.Step)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				fail, repair := fl.Step()
				if fail != nil {
					if _, _, err := fab.Fail(fail); err != nil {
						return // manager closing; the arm is ending
					}
				}
				if repair != nil {
					if _, err := fab.Repair(repair); err != nil {
						return
					}
				}
			}
		}()
	}

	rec := newLatRecorder(cfg.Clients)
	counts, elapsed, loopErr := closedLoop(fab, tree, cfg.fabricBenchConfig, true, rec)
	close(stop)
	injWg.Wait()
	if loopErr != nil {
		fab.Close(context.Background())
		return grayArm{}, loopErr
	}

	// Heal: repair whatever the processes still hold down, then drain
	// every outstanding repair ticket (budget deferrals included).
	if ds := fl.DownSet(); !ds.Empty() {
		if _, err := fab.Repair(ds); err != nil {
			fab.Close(context.Background())
			return grayArm{}, err
		}
	}
	fab.RepairAll()
	settle := time.Now().Add(15 * time.Second)
	for {
		s := fab.Stats()
		if s.PendingRepairs == 0 && s.QueueDepth == 0 {
			break
		}
		if time.Now().After(settle) {
			fab.Close(context.Background())
			return grayArm{}, fmt.Errorf("repairs failed to settle: %d pending", s.PendingRepairs)
		}
		time.Sleep(time.Millisecond)
	}

	s := fab.Stats()
	total := time.Since(start)
	if err := fab.Close(context.Background()); err != nil {
		return grayArm{}, err
	}
	arm := grayArm{
		ReuseCost:           reuse,
		Sched:               counts.schedulability(),
		AdmitPerSec:         float64(counts.offered()) / elapsed.Seconds(),
		Granted:             s.Granted,
		Revoked:             s.Revoked,
		Repaired:            s.Repaired,
		Lost:                s.RepairFailed,
		Aborted:             s.RepairAborted,
		Unaccounted:         int64(s.Revoked) - int64(s.Repaired) - int64(s.RepairFailed) - int64(s.RepairAborted),
		RepairAttempts:      s.RepairAttempts,
		AttemptBound:        float64(s.Revoked) + float64(cfg.BudgetBurst) + cfg.BudgetRate*total.Seconds(),
		BudgetExhausted:     s.RepairBudgetExhausted,
		FlapEvents:          s.FlapEvents,
		QuarantineEvts:      s.QuarantineEvents,
		Quarantined:         s.Quarantined,
		RepairedOnHeldTrunk: s.RepairedOnHeldTrunk,
		ChurnPerEpoch:       float64(s.TornRoutes) / float64(max64(s.Epochs, 1)),
		ElapsedSec:          total.Seconds(),
		admitDist:           rec.dist(),
	}
	if s.Repaired > 0 {
		arm.HeldTrunkFraction = float64(s.RepairedOnHeldTrunk) / float64(s.Repaired)
	}
	return arm, nil
}

// graySlowPlaneRun drives a two-plane federation with one plane running
// an injected DegradedPlane process under a latency budget, and reports
// the health/breaker/failover view.
func graySlowPlaneRun(cfg grayBenchConfig) (graySlowPlane, error) {
	// The latency budget must sit clearly above the fabric's ordinary
	// admit latency (dominated by the epoch flush timer), or every grant
	// on *both* planes counts as slow and the health scores converge.
	latBudget := cfg.LatencyBudget
	if latBudget <= 0 {
		latBudget = 4 * cfg.MaxWait
		if latBudget < 2*time.Millisecond {
			latBudget = 2 * time.Millisecond
		}
	}
	fcfg := federation.Config{
		Policy:        federation.PolicyRoundRobin,
		LatencyBudget: latBudget,
		HealthAlpha:   0.2,
	}
	for i := 0; i < 2; i++ {
		tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
		if err != nil {
			return graySlowPlane{}, err
		}
		fcfg.Planes = append(fcfg.Planes, federation.PlaneConfig{
			Fabric: fabric.Config{
				Tree: tree, BatchSize: cfg.Batch, MaxWait: cfg.MaxWait,
				AdmitTimeout: cfg.Timeout,
			},
		})
	}
	r, err := federation.New(fcfg)
	if err != nil {
		return graySlowPlane{}, err
	}
	defer r.Close(context.Background())
	if err := r.SetDegraded("plane0", faults.DegradedPlane{
		AdmitLatency: faults.Duration(2 * latBudget),
		DutyCycle:    0.5,
		Seed:         cfg.Seed,
	}); err != nil {
		return graySlowPlane{}, err
	}

	// Keep the offered load well inside both planes' capacity: the point
	// is the latency-budget signal (slow grants on the degraded plane),
	// not saturation denials, which would drag both health scores down
	// together and mask it.
	tree := fcfg.Planes[0].Fabric.Tree
	cap := tree.Nodes() / 4
	if cap < 2 {
		cap = 2
	}
	deadline := time.Now().Add(cfg.Duration / 2)
	var held []*federation.Handle
	n := 0
	for time.Now().Before(deadline) {
		h, err := r.Connect(context.Background(), n%tree.Nodes(), (n*13+5)%tree.Nodes())
		n++
		if err == nil {
			held = append(held, h)
		}
		if len(held) > cap {
			held[0].Release()
			held = held[1:]
		}
	}
	for _, h := range held {
		h.Release()
	}

	s := r.Stats()
	out := graySlowPlane{
		Offered:         s.Offered,
		Granted:         s.Granted,
		Failovers:       s.Failovers,
		BudgetExhausted: s.FailoverBudgetExhausted,
	}
	for _, ps := range s.Planes {
		if ps.Name == "plane0" {
			out.DegradedHealth = ps.Health
			out.DegradedBreaker = ps.Breaker
		} else {
			out.HealthyHealth = ps.Health
		}
	}
	return out, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
