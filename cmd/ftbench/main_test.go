package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWriteFilesCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	if err := writeFiles(dir, ".csv", 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeFiles(dir, ".json", 3, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9a.csv", "fig9b.csv", "fig9c.csv", "fig9d.csv", "table1.csv",
		"fig9a.json", "table1.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
		if strings.HasSuffix(name, ".json") && !strings.Contains(string(data), `"rows"`) {
			t.Fatalf("%s not JSON: %.60s", name, data)
		}
	}
}

func TestWriteFilesBadDir(t *testing.T) {
	if err := writeFiles("/dev/null/subdir", ".csv", 1, 1); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestFabricBench(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 8, Batch: 8, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "admissions/sec") {
		t.Errorf("summary missing admissions/sec:\n%s", out.String())
	}
}

func TestFabricBenchParallel(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 16, Batch: 16, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
		Parallel: 4, Workers: 4, Racy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "engine racy/w4 threshold=4") {
		t.Errorf("summary missing engine line:\n%s", out.String())
	}
}

func TestFabricBenchValidation(t *testing.T) {
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 3, Children: 4, Parents: 4}); err == nil {
		t.Error("zero clients accepted")
	}
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 0, Clients: 1, Open: 1, Duration: time.Millisecond}); err == nil {
		t.Error("bad topology accepted")
	}
}
