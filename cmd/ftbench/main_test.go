package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
)

func TestWriteFilesCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	if err := writeFiles(dir, ".csv", 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeFiles(dir, ".json", 3, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9a.csv", "fig9b.csv", "fig9c.csv", "fig9d.csv", "table1.csv",
		"fig9a.json", "table1.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
		if strings.HasSuffix(name, ".json") && !strings.Contains(string(data), `"rows"`) {
			t.Fatalf("%s not JSON: %.60s", name, data)
		}
	}
}

func TestWriteFilesBadDir(t *testing.T) {
	if err := writeFiles("/dev/null/subdir", ".csv", 1, 1); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestFabricBench(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 8, Batch: 8, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "admissions/sec") {
		t.Errorf("summary missing admissions/sec:\n%s", out.String())
	}
}

func TestFabricBenchParallel(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 16, Batch: 16, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
		Parallel: 4, Workers: 4, Racy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "engine racy/w4 threshold=4") {
		t.Errorf("summary missing engine line:\n%s", out.String())
	}
}

func TestFabricBenchTimeoutFailsWedgedRun(t *testing.T) {
	// A huge batch threshold with a long flush timer wedges admission:
	// the lone request sits in the epoch queue past its AdmitTimeout.
	// The run must fail with ErrAdmitTimeout instead of hanging.
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 2, Children: 4, Parents: 4,
		Clients: 1, Batch: 1 << 20, Open: 1,
		MaxWait: time.Hour, Duration: 200 * time.Millisecond, Seed: 1,
		Timeout: 5 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("wedged run reported success")
	}
	if !errors.Is(err, fabric.ErrAdmitTimeout) {
		t.Fatalf("err = %v, want ErrAdmitTimeout", err)
	}
}

func TestChaosBench(t *testing.T) {
	var out strings.Builder
	err := chaosBench(&out, chaosBenchConfig{
		fabricBenchConfig: fabricBenchConfig{
			Levels: 3, Children: 4, Parents: 2,
			Clients: 8, Batch: 4, Open: 2,
			MaxWait: 200 * time.Microsecond, Duration: 120 * time.Millisecond, Seed: 1,
		},
		Rates: []float64{0, 0.08},
		Cycle: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"chaos FT(3,4,2)", "rate", "sched", "0.000", "0.080"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos summary missing %q:\n%s", want, got)
		}
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates(" 0, 0.01,0.1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[0] != 0 || rates[1] != 0.01 || rates[2] != 0.1 {
		t.Fatalf("rates = %v", rates)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.5", ","} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestChaosBenchValidation(t *testing.T) {
	base := fabricBenchConfig{Levels: 2, Children: 4, Parents: 4,
		Clients: 1, Open: 1, Duration: time.Millisecond}
	if err := chaosBench(os.Stdout, chaosBenchConfig{fabricBenchConfig: base, Rates: nil, Cycle: time.Millisecond}); err == nil {
		t.Error("empty rates accepted")
	}
	if err := chaosBench(os.Stdout, chaosBenchConfig{fabricBenchConfig: base, Rates: []float64{0.1}}); err == nil {
		t.Error("zero cycle accepted")
	}
	if err := chaosBench(os.Stdout, chaosBenchConfig{Rates: []float64{0.1}, Cycle: time.Millisecond}); err == nil {
		t.Error("zero clients accepted")
	}
}

func TestFabricBenchValidation(t *testing.T) {
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 3, Children: 4, Parents: 4}); err == nil {
		t.Error("zero clients accepted")
	}
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 0, Clients: 1, Open: 1, Duration: time.Millisecond}); err == nil {
		t.Error("bad topology accepted")
	}
}
