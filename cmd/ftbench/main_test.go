package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/federation"
)

func TestWriteFilesCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	if err := writeFiles(dir, ".csv", 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeFiles(dir, ".json", 3, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9a.csv", "fig9b.csv", "fig9c.csv", "fig9d.csv", "table1.csv",
		"fig9a.json", "table1.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
		if strings.HasSuffix(name, ".json") && !strings.Contains(string(data), `"rows"`) {
			t.Fatalf("%s not JSON: %.60s", name, data)
		}
	}
}

func TestWriteFilesBadDir(t *testing.T) {
	if err := writeFiles("/dev/null/subdir", ".csv", 1, 1); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

func TestFabricBench(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 8, Batch: 8, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "admissions/sec") {
		t.Errorf("summary missing admissions/sec:\n%s", out.String())
	}
}

func TestFabricBenchParallel(t *testing.T) {
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 3, Children: 4, Parents: 4,
		Clients: 16, Batch: 16, Open: 2,
		MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
		Parallel: 4, Workers: 4, Racy: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "engine racy/w4 threshold=4") {
		t.Errorf("summary missing engine line:\n%s", out.String())
	}
}

func TestFabricBenchTimeoutFailsWedgedRun(t *testing.T) {
	// A huge batch threshold with a long flush timer wedges admission:
	// the lone request sits in the epoch queue past its AdmitTimeout.
	// The run must fail with ErrAdmitTimeout instead of hanging.
	var out strings.Builder
	err := fabricBench(&out, fabricBenchConfig{
		Levels: 2, Children: 4, Parents: 4,
		Clients: 1, Batch: 1 << 20, Open: 1,
		MaxWait: time.Hour, Duration: 200 * time.Millisecond, Seed: 1,
		Timeout: 5 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("wedged run reported success")
	}
	if !errors.Is(err, fabric.ErrAdmitTimeout) {
		t.Fatalf("err = %v, want ErrAdmitTimeout", err)
	}
}

func TestChaosBench(t *testing.T) {
	var out strings.Builder
	err := chaosBench(&out, chaosBenchConfig{
		fabricBenchConfig: fabricBenchConfig{
			Levels: 3, Children: 4, Parents: 2,
			Clients: 8, Batch: 4, Open: 2,
			MaxWait: 200 * time.Microsecond, Duration: 120 * time.Millisecond, Seed: 1,
		},
		Rates: []float64{0, 0.08},
		Cycle: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"chaos FT(3,4,2)", "rate", "sched", "0.000", "0.080"} {
		if !strings.Contains(got, want) {
			t.Errorf("chaos summary missing %q:\n%s", want, got)
		}
	}
}

// TestFederationBenchSweep runs a short 1-vs-2-plane sweep end to end,
// checking the per-plane grant report, the imbalance ratio, and the
// JSON dump.
func TestFederationBenchSweep(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	err := federationBench(&out, fedBenchConfig{
		fabricBenchConfig: fabricBenchConfig{
			Levels: 3, Children: 4, Parents: 4,
			Clients: 8, Batch: 8, Open: 2,
			MaxWait: 200 * time.Microsecond, Duration: 100 * time.Millisecond, Seed: 1,
		},
		PlaneCounts: []int{1, 2},
		Policies:    []string{"round-robin", "least-loaded"},
		JSONPath:    jsonPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"planes=1", "planes=2", "policy=round-robin", "policy=least-loaded",
		"per-plane grants", "imbalance", "grants/sec"} {
		if !strings.Contains(got, want) {
			t.Errorf("sweep summary missing %q:\n%s", want, got)
		}
	}
	var results []fedResult
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("JSON has %d points, want 4", len(results))
	}
	for _, res := range results {
		if res.Granted == 0 || len(res.PerPlane) != res.Planes {
			t.Errorf("sweep point %+v", res)
		}
	}
}

// TestFederationBenchFromConfig runs the single point an explicit
// config file describes — the `fttopo gen | ftbench -planes-config`
// pipeline.
func TestFederationBenchFromConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.json")
	fc := federation.Generate(2, 2, 4, 4, "", "least-loaded")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	err = federationBench(&out, fedBenchConfig{
		fabricBenchConfig: fabricBenchConfig{
			Clients: 4, Batch: 1, Open: 1,
			MaxWait: 200 * time.Microsecond, Duration: 50 * time.Millisecond, Seed: 1,
		},
		ConfigPath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "planes=2 policy=least-loaded") {
		t.Errorf("config-driven sweep summary:\n%s", out.String())
	}
}

func TestFederationBenchValidation(t *testing.T) {
	base := fabricBenchConfig{Levels: 2, Children: 4, Parents: 4,
		Clients: 1, Open: 1, Duration: time.Millisecond}
	if err := federationBench(os.Stdout, fedBenchConfig{fabricBenchConfig: base, PlaneCounts: []int{0}}); err == nil {
		t.Error("0-plane point accepted")
	}
	if err := federationBench(os.Stdout, fedBenchConfig{fabricBenchConfig: base, PlaneCounts: []int{1}, Policies: []string{"fastest"}}); err == nil {
		t.Error("bad policy accepted")
	}
	if err := federationBench(os.Stdout, fedBenchConfig{fabricBenchConfig: base, ConfigPath: "/does/not/exist.json"}); err == nil {
		t.Error("missing config accepted")
	}
	if err := federationBench(os.Stdout, fedBenchConfig{PlaneCounts: []int{1}}); err == nil {
		t.Error("zero clients accepted")
	}
}

func TestParsePlaneCounts(t *testing.T) {
	counts, err := parsePlaneCounts(" 1, 2,4 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 || counts[0] != 1 || counts[1] != 2 || counts[2] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	if _, err := parsePlaneCounts("1,x"); err == nil {
		t.Error("parsePlaneCounts(1,x) accepted")
	}
	if got := splitList(" a, ,b "); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("splitList = %v", got)
	}
}

func TestParseRates(t *testing.T) {
	rates, err := parseRates(" 0, 0.01,0.1 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 3 || rates[0] != 0 || rates[1] != 0.01 || rates[2] != 0.1 {
		t.Fatalf("rates = %v", rates)
	}
	for _, bad := range []string{"", "x", "-0.1", "1.5", ","} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

func TestChaosBenchValidation(t *testing.T) {
	base := fabricBenchConfig{Levels: 2, Children: 4, Parents: 4,
		Clients: 1, Open: 1, Duration: time.Millisecond}
	if err := chaosBench(os.Stdout, chaosBenchConfig{fabricBenchConfig: base, Rates: nil, Cycle: time.Millisecond}); err == nil {
		t.Error("empty rates accepted")
	}
	if err := chaosBench(os.Stdout, chaosBenchConfig{fabricBenchConfig: base, Rates: []float64{0.1}}); err == nil {
		t.Error("zero cycle accepted")
	}
	if err := chaosBench(os.Stdout, chaosBenchConfig{Rates: []float64{0.1}, Cycle: time.Millisecond}); err == nil {
		t.Error("zero clients accepted")
	}
}

func TestFabricBenchValidation(t *testing.T) {
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 3, Children: 4, Parents: 4}); err == nil {
		t.Error("zero clients accepted")
	}
	if err := fabricBench(os.Stdout, fabricBenchConfig{Levels: 0, Clients: 1, Open: 1, Duration: time.Millisecond}); err == nil {
		t.Error("bad topology accepted")
	}
}
