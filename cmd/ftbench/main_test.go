package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFilesCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	if err := writeFiles(dir, ".csv", 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := writeFiles(dir, ".json", 3, 1); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9a.csv", "fig9b.csv", "fig9c.csv", "fig9d.csv", "table1.csv",
		"fig9a.json", "table1.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Fatalf("%s empty", name)
		}
		if strings.HasSuffix(name, ".json") && !strings.Contains(string(data), `"rows"`) {
			t.Fatalf("%s not JSON: %.60s", name, data)
		}
	}
}

func TestWriteFilesBadDir(t *testing.T) {
	if err := writeFiles("/dev/null/subdir", ".csv", 1, 1); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}
