package main

// The -planes mode turns ftbench into a federation load generator: the
// same closed-loop FIFO-churn clients as -fabric, but driving a
// multi-plane federation router, swept over plane count × selection
// policy at a fixed client pool (equal offered load per point). Each
// point reports aggregate grants/sec, the per-plane grant counts, and
// the max/min imbalance ratio — the load-spread signal EXPERIMENTS.md
// E18 tracks.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fabric"
	"repro/internal/federation"
	"repro/internal/topology"
)

// fedBenchConfig parameterizes one federation sweep.
type fedBenchConfig struct {
	fabricBenchConfig
	PlaneCounts []int    // plane counts to sweep (identical planes)
	Policies    []string // plane selection policies to sweep
	ConfigPath  string   // explicit FileConfig instead of identical planes
	JSONPath    string   // also write the sweep results as JSON ("" = skip)
}

// planeGrants is one plane's share of a run, for the JSON record.
type planeGrants struct {
	Name   string `json:"name"`
	Grants uint64 `json:"grants"`
}

// fedResult is one sweep point's measurement.
type fedResult struct {
	Planes         int     `json:"planes"`
	Policy         string  `json:"policy"`
	Clients        int     `json:"clients"`
	DurationSec    float64 `json:"duration_sec"`
	Offered        uint64  `json:"offered"`
	Granted        uint64  `json:"granted"`
	Rejected       uint64  `json:"rejected"`
	Failovers      uint64  `json:"failovers"`
	GrantsPerSec   float64 `json:"grants_per_sec"`
	Schedulability float64 `json:"schedulability"`
	// Imbalance is max/min of per-plane grants; 0 means undefined (some
	// plane took no grants), rendered as "inf" in the text output.
	Imbalance float64       `json:"imbalance"`
	PerPlane  []planeGrants `json:"per_plane"`
	Admit     admitDist     `json:"admit"`
	// Host parallelism at run time, so throughput numbers carry the
	// hardware context they were measured under.
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// closedLoopFederation is closedLoop against a federation router: the
// same churn model, counting grants and scheduler denials. A non-nil
// rec captures per-Connect wall time for tail-latency reporting.
func closedLoopFederation(r *federation.Router, cfg fabricBenchConfig, rec *latRecorder) (loopCounts, time.Duration, error) {
	var admitted, denied atomic.Uint64
	deadline := time.Now().Add(cfg.Duration)
	nodes := r.Nodes()
	errs := make([]error, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)))
			var held []*federation.Handle
			defer func() {
				for _, h := range held {
					if err := h.Release(); err != nil && errs[id] == nil {
						errs[id] = fmt.Errorf("client %d final release: %w", id, err)
					}
				}
			}()
			for time.Now().Before(deadline) {
				for len(held) >= cfg.Open {
					if err := held[0].Release(); err != nil {
						errs[id] = fmt.Errorf("client %d release: %w", id, err)
						return
					}
					held = held[1:]
				}
				src, dst := rng.Intn(nodes), rng.Intn(nodes)
				var began time.Time
				if rec != nil {
					began = time.Now()
				}
				h, err := r.Connect(context.Background(), src, dst)
				if rec != nil {
					rec.record(id, time.Since(began))
				}
				switch {
				case err == nil:
					admitted.Add(1)
					held = append(held, h)
				case errors.Is(err, fabric.ErrUnroutable) || errors.Is(err, fabric.ErrUnroutableDegraded):
					denied.Add(1)
				default:
					errs[id] = fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return loopCounts{}, elapsed, err
		}
	}
	return loopCounts{admitted: admitted.Load(), denied: denied.Load()}, elapsed, nil
}

// fedPoints expands the sweep grid: every plane count × policy from the
// flags, or the single point an explicit config file describes.
func fedPoints(cfg fedBenchConfig) ([]federation.Config, []fedResult, error) {
	if cfg.ConfigPath != "" {
		fc, err := federation.LoadFile(cfg.ConfigPath)
		if err != nil {
			return nil, nil, err
		}
		rc, err := fc.Build()
		if err != nil {
			return nil, nil, err
		}
		return []federation.Config{rc},
			[]fedResult{{Planes: len(rc.Planes), Policy: rc.Policy.String()}}, nil
	}
	var cfgs []federation.Config
	var seeds []fedResult
	for _, n := range cfg.PlaneCounts {
		if n < 1 {
			return nil, nil, fmt.Errorf("federation bench: plane count %d", n)
		}
		for _, polName := range cfg.Policies {
			pol, err := federation.ParsePolicy(polName)
			if err != nil {
				return nil, nil, err
			}
			rc := federation.Config{Policy: pol}
			for i := 0; i < n; i++ {
				tree, err := topology.New(cfg.Levels, cfg.Children, cfg.Parents)
				if err != nil {
					return nil, nil, err
				}
				fc := fabric.Config{
					Tree: tree, SchedulerSpec: cfg.Scheduler,
					BatchSize: cfg.Batch, MaxWait: cfg.MaxWait,
					AdmitTimeout: cfg.Timeout,
				}
				cfg.Pipeline.apply(&fc)
				rc.Planes = append(rc.Planes, federation.PlaneConfig{Fabric: fc})
			}
			cfgs = append(cfgs, rc)
			seeds = append(seeds, fedResult{Planes: n, Policy: pol.String()})
		}
	}
	return cfgs, seeds, nil
}

// federationBench runs the plane-count × policy sweep and prints (and
// optionally JSON-dumps) each point.
func federationBench(out io.Writer, cfg fedBenchConfig) error {
	if err := cfg.fabricBenchConfig.validate(); err != nil {
		return err
	}
	cfgs, results, err := fedPoints(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "federation sweep  clients=%d open=%d epoch=%d maxwait=%s duration=%s\n",
		cfg.Clients, cfg.Open, cfg.Batch, cfg.MaxWait, cfg.Duration)
	for i, rc := range cfgs {
		r, err := federation.New(rc)
		if err != nil {
			return err
		}
		rec := newLatRecorder(cfg.Clients)
		counts, elapsed, loopErr := closedLoopFederation(r, cfg.fabricBenchConfig, rec)
		s := r.Stats()
		if err := r.Close(context.Background()); err != nil && loopErr == nil {
			loopErr = err
		}
		if loopErr != nil {
			return loopErr
		}

		res := &results[i]
		res.Clients = cfg.Clients
		res.NumCPU = runtime.NumCPU()
		res.GOMAXPROCS = runtime.GOMAXPROCS(0)
		res.DurationSec = elapsed.Seconds()
		res.Offered = s.Offered
		res.Granted = s.Granted
		res.Rejected = s.Rejected
		res.Failovers = s.Failovers
		res.GrantsPerSec = float64(counts.admitted) / elapsed.Seconds()
		res.Schedulability = counts.schedulability()
		res.Imbalance = s.Imbalance
		res.Admit = rec.dist()
		perPlane := make([]string, len(s.Planes))
		for j, ps := range s.Planes {
			res.PerPlane = append(res.PerPlane, planeGrants{Name: ps.Name, Grants: ps.Grants})
			perPlane[j] = fmt.Sprintf("%s=%d", ps.Name, ps.Grants)
		}
		imb := "inf"
		if res.Imbalance > 0 {
			imb = fmt.Sprintf("%.2f", res.Imbalance)
		}
		fmt.Fprintf(out, "  planes=%d policy=%-12s grants/sec %8.0f  schedulability %.3f  failovers %d\n",
			res.Planes, res.Policy, res.GrantsPerSec, res.Schedulability, res.Failovers)
		fmt.Fprintf(out, "    per-plane grants %s  imbalance %s  admit us p50=%.1f p99=%.1f\n",
			strings.Join(perPlane, " "), imb, res.Admit.AdmitP50us, res.Admit.AdmitP99us)
	}
	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", cfg.JSONPath)
	}
	return nil
}

// splitList splits a comma-separated flag into trimmed non-empty parts.
func splitList(s string) []string {
	var parts []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			parts = append(parts, p)
		}
	}
	return parts
}

// parsePlaneCounts parses the -planes flag: comma-separated counts.
func parsePlaneCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("federation bench: plane count %q: %w", part, err)
		}
		counts = append(counts, n)
	}
	return counts, nil
}
