package main

import "testing"

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"adaptive", "deterministic", "random"} {
		if _, err := parsePolicy(name); err != nil {
			t.Errorf("parsePolicy(%q): %v", name, err)
		}
	}
	if _, err := parsePolicy("nope"); err == nil {
		t.Error("unknown router accepted")
	}
}

func TestParseRates(t *testing.T) {
	rs, err := parseRates("0.1, 0.2,0.3")
	if err != nil || len(rs) != 3 || rs[1] != 0.2 {
		t.Fatalf("parseRates = %v, %v", rs, err)
	}
	if _, err := parseRates("0.1,x"); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestRunSweep(t *testing.T) {
	if err := run(2, 4, 4, "adaptive", 2, 4, 5, "0.05,0.2", 500, 100, 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunBulk(t *testing.T) {
	if err := run(2, 4, 4, "deterministic", 1, 4, 5, "", 0, 0, 1, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 4, 4, "adaptive", 1, 4, 5, "0.1", 100, 10, 1, 0); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(2, 4, 4, "nope", 1, 4, 5, "0.1", 100, 10, 1, 0); err == nil {
		t.Error("bad router accepted")
	}
	if err := run(2, 4, 4, "adaptive", 1, 4, 5, "zzz", 100, 10, 1, 0); err == nil {
		t.Error("bad rates accepted")
	}
	if err := run(2, 4, 4, "adaptive", 1, 4, 5, "0.1", 0, 0, 1, 0); err == nil {
		t.Error("zero cycles accepted")
	}
}
