// Command ftworm drives the flit-level wormhole simulator: open-loop
// load–latency sweeps or closed bulk-transfer phases on a fat tree.
//
// Usage:
//
//	ftworm [-levels 3] [-children 4] [-parents 4]
//	       [-router adaptive|deterministic|random] [-vcs 1] [-buffer 4]
//	       [-packet 5] [-rates 0.02,0.05,0.1,0.2,0.35,0.5]
//	       [-cycles 6000] [-warmup 1000] [-seed 1]
//	       [-bulk flits]   (run a permutation bulk phase instead)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/report"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

func main() {
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	router := flag.String("router", "adaptive", "adaptive | deterministic | random")
	vcs := flag.Int("vcs", 1, "virtual channels per input port")
	buffer := flag.Int("buffer", 4, "per-VC buffer depth in flits")
	packet := flag.Int("packet", 5, "packet length in flits")
	rates := flag.String("rates", "0.02,0.05,0.1,0.2,0.35,0.5", "comma-separated injection rates")
	cycles := flag.Int("cycles", 6000, "simulated cycles per rate")
	warmup := flag.Int("warmup", 1000, "cycles excluded from statistics")
	seed := flag.Int64("seed", 1, "simulation seed")
	bulk := flag.Int("bulk", 0, "if > 0: run a permutation bulk phase with this many flits per message")
	flag.Parse()

	if err := run(*levels, *children, *parents, *router, *vcs, *buffer, *packet, *rates, *cycles, *warmup, *seed, *bulk); err != nil {
		fmt.Fprintf(os.Stderr, "ftworm: %v\n", err)
		os.Exit(1)
	}
}

// routerModes is ftworm's documented mini-registry of upward routing
// policies — the cmd-level analogue of internal/sched's engine registry.
// -router values resolve against this table, so unknown names are
// reported with the full menu rather than failing a bare string switch.
var routerModes = []struct {
	name   string
	policy wormhole.UpPolicy
	doc    string
}{
	{"adaptive", wormhole.AdaptiveFreeSpace, "upward port with the most downstream free buffer space"},
	{"deterministic", wormhole.DeterministicFirst, "always the lowest-index upward port"},
	{"random", wormhole.RandomUp, "uniform random among the upward ports"},
}

func parsePolicy(name string) (wormhole.UpPolicy, error) {
	names := make([]string, len(routerModes))
	for i, m := range routerModes {
		if m.name == name {
			return m.policy, nil
		}
		names[i] = m.name + " (" + m.doc + ")"
	}
	return 0, fmt.Errorf("unknown router %q; registered modes:\n  %s", name, strings.Join(names, "\n  "))
}

func parseRates(spec string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(spec, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad rate %q: %v", part, err)
		}
		out = append(out, r)
	}
	return out, nil
}

func run(levels, children, parents int, router string, vcs, buffer, packet int, rateSpec string, cycles, warmup int, seed int64, bulk int) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(router)
	if err != nil {
		return err
	}
	fmt.Printf("%s — %s router, %d VCs, %d-flit buffers\n", tree, policy, vcs, buffer)

	base := wormhole.Config{
		Tree:            tree,
		Policy:          policy,
		VirtualChannels: vcs,
		BufferDepth:     buffer,
		PacketLen:       packet,
		Seed:            seed,
	}

	if bulk > 0 {
		perm := rand.New(rand.NewSource(seed)).Perm(tree.Nodes())
		cfg := base
		cfg.PacketLen = bulk
		cfg.Dest = func(src int, _ *rand.Rand) int { return perm[src] }
		m, err := wormhole.RunBulk(cfg, 1000*bulk*tree.Levels()*tree.Nodes())
		if err != nil {
			return err
		}
		fmt.Printf("bulk permutation phase, %d flits/message: %d packets delivered in %d cycles (avg latency %.1f)\n",
			bulk, m.Delivered, m.Cycles, m.AvgLatency)
		return nil
	}

	rateList, err := parseRates(rateSpec)
	if err != nil {
		return err
	}
	tb := report.NewTable("", "inj. rate", "injected", "delivered", "avg latency", "p99", "throughput")
	for _, rate := range rateList {
		cfg := base
		cfg.Rate = rate
		cfg.Cycles = cycles
		cfg.Warmup = warmup
		m, err := wormhole.Run(cfg)
		if err != nil {
			return err
		}
		tb.AddRow(fmt.Sprintf("%.3f", rate), fmt.Sprint(m.Injected), fmt.Sprint(m.Delivered),
			fmt.Sprintf("%.1f", m.AvgLatency), fmt.Sprintf("%.0f", m.P99Latency),
			fmt.Sprintf("%.3f", m.ThroughputFlits))
	}
	return tb.Render(os.Stdout)
}
