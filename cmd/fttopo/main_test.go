package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/federation"
	"repro/internal/topology"
)

func TestRunBasic(t *testing.T) {
	if err := run(3, 4, 4, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPathAndDot(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run(2, 4, 4, dot, "0,15"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph ft") {
		t.Fatalf("dot file wrong: %.80s", data)
	}
}

func TestRunAsymmetricSkipsOhring(t *testing.T) {
	// m != w: the Ohring cross-check only applies to symmetric trees and
	// must be skipped, not fail.
	if err := run(3, 4, 2, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 4, 4, "", ""); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(2, 4, 4, "", "garbage"); err == nil {
		t.Error("bad path spec accepted")
	}
	if err := run(2, 4, 4, "/nonexistent-dir/x.dot", ""); err == nil {
		t.Error("unwritable dot path accepted")
	}
}

// TestGenEmitsLoadableConfig pins the gen → ftserve contract: the
// emitted file loads through the same federation.LoadFile path the
// server uses, carrying the requested shape and knobs.
func TestGenEmitsLoadableConfig(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fabric.json")
	err := runGen([]string{"-planes", "3", "-levels", "2", "-children", "4", "-parents", "2",
		"-scheduler", "backtrack,depth=2", "-policy", "least-loaded", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := federation.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Planes) != 3 || fc.Policy != "least-loaded" {
		t.Fatalf("generated config %+v", fc)
	}
	for i, ps := range fc.Planes {
		if ps.Levels != 2 || ps.Arity != 4 || ps.Width != 2 || ps.Scheduler != "backtrack,depth=2" {
			t.Errorf("plane %d spec %+v", i, ps)
		}
	}
	if _, err := fc.Build(); err != nil {
		t.Fatal(err)
	}
}

// TestGenGrayKnobs pins the gray-failure flags into the emitted file:
// the plane-level damping/budget knobs and the router-level health,
// latency-budget, and failover-budget knobs all survive the round trip
// through federation.LoadFile and Build.
func TestGenGrayKnobs(t *testing.T) {
	out := filepath.Join(t.TempDir(), "gray.json")
	err := runGen([]string{"-planes", "2", "-levels", "2", "-children", "4", "-parents", "2",
		"-flap-threshold", "2.5", "-flap-half-life", "2s", "-probation", "250ms",
		"-repair-budget", "128", "-repair-budget-burst", "256",
		"-health-alpha", "0.3", "-open-below", "0.1", "-latency-budget", "3ms",
		"-failover-budget", "50", "-failover-budget-burst", "75", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := federation.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if fc.HealthAlpha != 0.3 || fc.OpenBelow != 0.1 || fc.LatencyBudget != "3ms" ||
		fc.FailoverBudgetRate != 50 || fc.FailoverBudgetBurst != 75 {
		t.Fatalf("router gray knobs lost: %+v", fc)
	}
	for i, ps := range fc.Planes {
		if ps.FlapThreshold != 2.5 || ps.FlapHalfLife != "2s" || ps.QuarantineProbation != "250ms" ||
			ps.RepairBudgetRate != 128 || ps.RepairBudgetBurst != 256 {
			t.Errorf("plane %d gray knobs lost: %+v", i, ps)
		}
	}
	cfg, err := fc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Planes[0].Fabric.FlapThreshold != 2.5 || cfg.FailoverBudget.Rate != 50 {
		t.Fatalf("built config dropped gray knobs: %+v", cfg)
	}
	// Damping off by default: a plain gen carries no gray fields.
	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := runGen([]string{"-planes", "1", "-out", plain}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "flap") || strings.Contains(string(data), "budget") {
		t.Fatalf("plain gen leaked gray fields:\n%s", data)
	}
}

func TestGenErrors(t *testing.T) {
	if err := runGen([]string{"-planes", "0"}); err == nil {
		t.Error("0 planes accepted")
	}
	if err := runGen([]string{"-levels", "0", "-out", os.DevNull}); err == nil {
		t.Error("bad shape accepted")
	}
	if err := runGen([]string{"-policy", "fastest", "-out", os.DevNull}); err == nil {
		t.Error("bad policy accepted")
	}
	if err := runGen([]string{"-scheduler", "warp-drive", "-out", os.DevNull}); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := runGen([]string{"-out", "/nonexistent-dir/x.json"}); err == nil {
		t.Error("unwritable out path accepted")
	}
	if err := runGen([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestEnumeratePathsLimit(t *testing.T) {
	// 3-level w=4 with a top-level ancestor: 16 paths, print limited.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 63); err != nil {
		t.Fatal(err)
	}
	// Same-switch pair: zero paths to enumerate, still fine.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 1); err != nil {
		t.Fatal(err)
	}
}
