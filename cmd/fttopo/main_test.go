package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/federation"
	"repro/internal/topology"
)

func TestRunBasic(t *testing.T) {
	if err := run(3, 4, 4, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPathAndDot(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run(2, 4, 4, dot, "0,15"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph ft") {
		t.Fatalf("dot file wrong: %.80s", data)
	}
}

func TestRunAsymmetricSkipsOhring(t *testing.T) {
	// m != w: the Ohring cross-check only applies to symmetric trees and
	// must be skipped, not fail.
	if err := run(3, 4, 2, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 4, 4, "", ""); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(2, 4, 4, "", "garbage"); err == nil {
		t.Error("bad path spec accepted")
	}
	if err := run(2, 4, 4, "/nonexistent-dir/x.dot", ""); err == nil {
		t.Error("unwritable dot path accepted")
	}
}

// TestGenEmitsLoadableConfig pins the gen → ftserve contract: the
// emitted file loads through the same federation.LoadFile path the
// server uses, carrying the requested shape and knobs.
func TestGenEmitsLoadableConfig(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fabric.json")
	err := runGen([]string{"-planes", "3", "-levels", "2", "-children", "4", "-parents", "2",
		"-scheduler", "backtrack,depth=2", "-policy", "least-loaded", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := federation.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Planes) != 3 || fc.Policy != "least-loaded" {
		t.Fatalf("generated config %+v", fc)
	}
	for i, ps := range fc.Planes {
		if ps.Levels != 2 || ps.Arity != 4 || ps.Width != 2 || ps.Scheduler != "backtrack,depth=2" {
			t.Errorf("plane %d spec %+v", i, ps)
		}
	}
	if _, err := fc.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestGenErrors(t *testing.T) {
	if err := runGen([]string{"-planes", "0"}); err == nil {
		t.Error("0 planes accepted")
	}
	if err := runGen([]string{"-levels", "0", "-out", os.DevNull}); err == nil {
		t.Error("bad shape accepted")
	}
	if err := runGen([]string{"-policy", "fastest", "-out", os.DevNull}); err == nil {
		t.Error("bad policy accepted")
	}
	if err := runGen([]string{"-scheduler", "warp-drive", "-out", os.DevNull}); err == nil {
		t.Error("bad scheduler accepted")
	}
	if err := runGen([]string{"-out", "/nonexistent-dir/x.json"}); err == nil {
		t.Error("unwritable out path accepted")
	}
	if err := runGen([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestEnumeratePathsLimit(t *testing.T) {
	// 3-level w=4 with a top-level ancestor: 16 paths, print limited.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 63); err != nil {
		t.Fatal(err)
	}
	// Same-switch pair: zero paths to enumerate, still fine.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 1); err != nil {
		t.Fatal(err)
	}
}
