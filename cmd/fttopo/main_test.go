package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestRunBasic(t *testing.T) {
	if err := run(3, 4, 4, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPathAndDot(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run(2, 4, 4, dot, "0,15"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "graph ft") {
		t.Fatalf("dot file wrong: %.80s", data)
	}
}

func TestRunAsymmetricSkipsOhring(t *testing.T) {
	// m != w: the Ohring cross-check only applies to symmetric trees and
	// must be skipped, not fail.
	if err := run(3, 4, 2, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(0, 4, 4, "", ""); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(2, 4, 4, "", "garbage"); err == nil {
		t.Error("bad path spec accepted")
	}
	if err := run(2, 4, 4, "/nonexistent-dir/x.dot", ""); err == nil {
		t.Error("unwritable dot path accepted")
	}
}

func TestEnumeratePathsLimit(t *testing.T) {
	// 3-level w=4 with a top-level ancestor: 16 paths, print limited.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 63); err != nil {
		t.Fatal(err)
	}
	// Same-switch pair: zero paths to enumerate, still fine.
	if err := enumeratePaths(topology.MustNew(3, 4, 4), 0, 1); err != nil {
		t.Fatal(err)
	}
}
