// Command fttopo inspects fat-tree topologies: structural summary,
// wiring validation (including the Ohring/Theorem-1 cross-check), path
// enumeration between two nodes, and Graphviz export. The gen
// subcommand emits multi-plane federation configs for ftserve/ftbench.
//
// Usage:
//
//	fttopo [-levels 3] [-children 4] [-parents 4] [-dot out.dot]
//	       [-path src,dst]
//	fttopo gen [-planes 2] [-levels 3] [-children 4] [-parents 4]
//	           [-scheduler spec] [-policy hash] [-out fabric.json]
//	           [-flap-threshold 3] [-flap-half-life 1s] [-probation 100ms]
//	           [-repair-budget 256] [-repair-budget-burst 1024]
//	           [-health-alpha 0.2] [-open-below 0.15] [-latency-budget 2ms]
//	           [-failover-budget 100] [-failover-budget-burst 200]
//	           [-delivery-pipeline 1] [-drain-worker] [-stats-snapshots]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/digits"
	"repro/internal/federation"
	"repro/internal/topology"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		if err := runGen(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "fttopo gen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	dotPath := flag.String("dot", "", "write Graphviz DOT to this file")
	pathSpec := flag.String("path", "", "enumerate paths between 'src,dst'")
	flag.Parse()

	if err := run(*levels, *children, *parents, *dotPath, *pathSpec); err != nil {
		fmt.Fprintf(os.Stderr, "fttopo: %v\n", err)
		os.Exit(1)
	}
}

// runGen is the gen subcommand: emit a federation FileConfig of n
// identical planes, validated before it is written, to stdout or -out.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	planes := fs.Int("planes", 2, "number of planes")
	levels := fs.Int("levels", 3, "switch levels l")
	children := fs.Int("children", 4, "children per switch m")
	parents := fs.Int("parents", 4, "parents per switch w")
	scheduler := fs.String("scheduler", "", "per-plane admission engine spec (empty = fabric default)")
	policy := fs.String("policy", "", "plane selection policy (hash|round-robin|random|least-loaded; empty = hash)")
	flapThreshold := fs.Float64("flap-threshold", 0, "per-plane flap-damping quarantine threshold (0 = damping off)")
	flapHalfLife := fs.Duration("flap-half-life", 0, "per-plane flap score half-life (0 = fabric default)")
	probation := fs.Duration("probation", 0, "per-plane quarantine probation window (0 = fabric default)")
	repairBudget := fs.Float64("repair-budget", 0, "per-plane repair retry tokens/sec (0 = fabric default, negative = unlimited)")
	repairBurst := fs.Int("repair-budget-burst", 0, "per-plane repair retry burst (0 = fabric default)")
	healthAlpha := fs.Float64("health-alpha", 0, "EWMA health smoothing factor (0 = federation default)")
	openBelow := fs.Float64("open-below", 0, "health score below which the breaker opens (0 = federation default)")
	latencyBudget := fs.Duration("latency-budget", 0, "grant latency above this counts as degraded (0 = off)")
	failoverBudget := fs.Float64("failover-budget", 0, "failover tokens/sec across the federation (0 = unlimited)")
	failoverBurst := fs.Int("failover-budget-burst", 0, "failover token burst (0 = rate ceiling)")
	deliveryPipeline := fs.Int("delivery-pipeline", 0, "per-plane verdict-delivery spare buffers (0 = default on, negative = synchronous)")
	drainWorker := fs.Bool("drain-worker", false, "per-plane dedicated release-ring drain goroutine")
	statsSnapshots := fs.Bool("stats-snapshots", false, "per-plane lock-free seqlock Stats snapshots")
	out := fs.String("out", "", "write the config to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planes < 1 {
		return fmt.Errorf("need at least 1 plane, got %d", *planes)
	}
	fc := federation.Generate(*planes, *levels, *children, *parents, *scheduler, *policy)
	fc.HealthAlpha = *healthAlpha
	fc.OpenBelow = *openBelow
	if *latencyBudget > 0 {
		fc.LatencyBudget = latencyBudget.String()
	}
	fc.FailoverBudgetRate = *failoverBudget
	fc.FailoverBudgetBurst = *failoverBurst
	for i := range fc.Planes {
		fc.Planes[i].FlapThreshold = *flapThreshold
		if *flapHalfLife > 0 {
			fc.Planes[i].FlapHalfLife = flapHalfLife.String()
		}
		if *probation > 0 {
			fc.Planes[i].QuarantineProbation = probation.String()
		}
		fc.Planes[i].RepairBudgetRate = *repairBudget
		fc.Planes[i].RepairBudgetBurst = *repairBurst
		fc.Planes[i].DeliveryPipeline = *deliveryPipeline
		fc.Planes[i].DrainWorker = *drainWorker
		fc.Planes[i].StatsSnapshots = *statsSnapshots
	}
	if err := fc.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return fc.Write(w)
}

func run(levels, children, parents int, dotPath, pathSpec string) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	fmt.Println(tree)
	for h := 0; h < tree.Levels(); h++ {
		fmt.Printf("  level %d: %d switches\n", h, tree.SwitchesAt(h))
	}
	m := tree.ComputeMetrics()
	fmt.Printf("  diameter %d hops, avg distance %.2f, path diversity %d, bisection %d links, full bandwidth: %v\n",
		m.Diameter, m.AvgDistance, m.MaxPathDiversity, m.BisectionLinks, m.FullBandwidth)
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("wiring validation FAILED: %w", err)
	}
	fmt.Println("wiring validation: ok (bidirectional adjacency consistent)")
	if tree.Spec().Symmetric() {
		if err := crossCheckOhring(tree); err != nil {
			return err
		}
		fmt.Println("Ohring construction cross-check: ok (Theorem 1 wiring matches)")
	}

	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tree.WriteDot(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotPath)
	}

	if pathSpec != "" {
		var src, dst int
		if _, err := fmt.Sscanf(pathSpec, "%d,%d", &src, &dst); err != nil {
			return fmt.Errorf("bad -path %q: want 'src,dst'", pathSpec)
		}
		return enumeratePaths(tree, src, dst)
	}
	return nil
}

func crossCheckOhring(tree *topology.Tree) error {
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for p := 0; p < tree.Parents(); p++ {
				if tree.UpParent(h, idx, p) != tree.OhringParent(h, idx, p) {
					return fmt.Errorf("Ohring mismatch at level %d switch %d port %d", h, idx, p)
				}
			}
		}
	}
	return nil
}

func enumeratePaths(tree *topology.Tree, src, dst int) error {
	h := tree.AncestorLevel(src, dst)
	total := digits.Pow(tree.Parents(), h)
	fmt.Printf("paths %d → %d: common ancestor at level %d, %d distinct paths\n", src, dst, h, total)
	limit := total
	if limit > 16 {
		limit = 16
	}
	for enc := 0; enc < limit; enc++ {
		ports := make([]int, h)
		e := enc
		for i := range ports {
			ports[i] = e % tree.Parents()
			e /= tree.Parents()
		}
		path, err := tree.ExpandPath(src, dst, ports)
		if err != nil {
			return err
		}
		hops := make([]string, len(path.Hops))
		for i, hp := range path.Hops {
			hops[i] = fmt.Sprintf("(%d,%d)", hp.Level, hp.Index)
		}
		fmt.Printf("  ports %v: %s\n", ports, strings.Join(hops, " → "))
	}
	if limit < total {
		fmt.Printf("  … %d more\n", total-limit)
	}
	return nil
}
