// Command fttopo inspects fat-tree topologies: structural summary,
// wiring validation (including the Ohring/Theorem-1 cross-check), path
// enumeration between two nodes, and Graphviz export. The gen
// subcommand emits multi-plane federation configs for ftserve/ftbench.
//
// Usage:
//
//	fttopo [-levels 3] [-children 4] [-parents 4] [-dot out.dot]
//	       [-path src,dst]
//	fttopo gen [-planes 2] [-levels 3] [-children 4] [-parents 4]
//	           [-scheduler spec] [-policy hash] [-out fabric.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/digits"
	"repro/internal/federation"
	"repro/internal/topology"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gen" {
		if err := runGen(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "fttopo gen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	levels := flag.Int("levels", 3, "switch levels l")
	children := flag.Int("children", 4, "children per switch m")
	parents := flag.Int("parents", 4, "parents per switch w")
	dotPath := flag.String("dot", "", "write Graphviz DOT to this file")
	pathSpec := flag.String("path", "", "enumerate paths between 'src,dst'")
	flag.Parse()

	if err := run(*levels, *children, *parents, *dotPath, *pathSpec); err != nil {
		fmt.Fprintf(os.Stderr, "fttopo: %v\n", err)
		os.Exit(1)
	}
}

// runGen is the gen subcommand: emit a federation FileConfig of n
// identical planes, validated before it is written, to stdout or -out.
func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	planes := fs.Int("planes", 2, "number of planes")
	levels := fs.Int("levels", 3, "switch levels l")
	children := fs.Int("children", 4, "children per switch m")
	parents := fs.Int("parents", 4, "parents per switch w")
	scheduler := fs.String("scheduler", "", "per-plane admission engine spec (empty = fabric default)")
	policy := fs.String("policy", "", "plane selection policy (hash|round-robin|random|least-loaded; empty = hash)")
	out := fs.String("out", "", "write the config to this file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planes < 1 {
		return fmt.Errorf("need at least 1 plane, got %d", *planes)
	}
	fc := federation.Generate(*planes, *levels, *children, *parents, *scheduler, *policy)
	if err := fc.Validate(); err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return fc.Write(w)
}

func run(levels, children, parents int, dotPath, pathSpec string) error {
	tree, err := topology.New(levels, children, parents)
	if err != nil {
		return err
	}
	fmt.Println(tree)
	for h := 0; h < tree.Levels(); h++ {
		fmt.Printf("  level %d: %d switches\n", h, tree.SwitchesAt(h))
	}
	m := tree.ComputeMetrics()
	fmt.Printf("  diameter %d hops, avg distance %.2f, path diversity %d, bisection %d links, full bandwidth: %v\n",
		m.Diameter, m.AvgDistance, m.MaxPathDiversity, m.BisectionLinks, m.FullBandwidth)
	if err := tree.Validate(); err != nil {
		return fmt.Errorf("wiring validation FAILED: %w", err)
	}
	fmt.Println("wiring validation: ok (bidirectional adjacency consistent)")
	if tree.Spec().Symmetric() {
		if err := crossCheckOhring(tree); err != nil {
			return err
		}
		fmt.Println("Ohring construction cross-check: ok (Theorem 1 wiring matches)")
	}

	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tree.WriteDot(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotPath)
	}

	if pathSpec != "" {
		var src, dst int
		if _, err := fmt.Sscanf(pathSpec, "%d,%d", &src, &dst); err != nil {
			return fmt.Errorf("bad -path %q: want 'src,dst'", pathSpec)
		}
		return enumeratePaths(tree, src, dst)
	}
	return nil
}

func crossCheckOhring(tree *topology.Tree) error {
	for h := 0; h < tree.LinkLevels(); h++ {
		for idx := 0; idx < tree.SwitchesAt(h); idx++ {
			for p := 0; p < tree.Parents(); p++ {
				if tree.UpParent(h, idx, p) != tree.OhringParent(h, idx, p) {
					return fmt.Errorf("Ohring mismatch at level %d switch %d port %d", h, idx, p)
				}
			}
		}
	}
	return nil
}

func enumeratePaths(tree *topology.Tree, src, dst int) error {
	h := tree.AncestorLevel(src, dst)
	total := digits.Pow(tree.Parents(), h)
	fmt.Printf("paths %d → %d: common ancestor at level %d, %d distinct paths\n", src, dst, h, total)
	limit := total
	if limit > 16 {
		limit = 16
	}
	for enc := 0; enc < limit; enc++ {
		ports := make([]int, h)
		e := enc
		for i := range ports {
			ports[i] = e % tree.Parents()
			e /= tree.Parents()
		}
		path, err := tree.ExpandPath(src, dst, ports)
		if err != nil {
			return err
		}
		hops := make([]string, len(path.Hops))
		for i, hp := range path.Hops {
			hops[i] = fmt.Sprintf("(%d,%d)", hp.Level, hp.Index)
		}
		fmt.Printf("  ports %v: %s\n", ports, strings.Join(hops, " → "))
	}
	if limit < total {
		fmt.Printf("  … %d more\n", total-limit)
	}
	return nil
}
