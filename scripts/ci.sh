#!/usr/bin/env bash
# Tier-1 gate: build everything, vet, and run the full test suite with
# the race detector enabled. The race run is mandatory — internal/fabric
# and internal/parsched mutate one shared link state from many
# goroutines, and their tests (plus the linkstate misuse tests) only
# prove their guarantees under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Formatting gate: fail on any file gofmt would rewrite.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt -l flagged:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go test -race ./...

# Concurrency-focused pass: re-run the parallel engine, the fabric
# manager (including the fault revoke/re-admit chaos tests and the
# gray-failure flap-damping chaos test), the fault-injection package,
# and the federation router (whose plane-kill chaos test proves zero
# lost connections, plus the breaker/health gray tests) under -race
# with a doubled count, shaking out interleavings a single full-suite
# run can miss.
go test -race -count=2 ./internal/parsched ./internal/fabric ./internal/faults ./internal/federation

# Shard-engine stress: the high-worker-count shard tests (16 workers on
# deliberately small trees, steal on and off) force maximal queue
# contention and whole-shard steals; -count=2 under -race shakes out
# claim/steal interleavings a single run can miss.
go test -race -count=2 -run 'HighWorker' ./internal/parsched

# Bench smoke: compile and run every benchmark for exactly one iteration
# so bit-rot in the bench harnesses (including the parallel-engine and
# zero-allocation benches) fails CI without costing bench-grade runtime.
go test -run '^$' -bench . -benchtime 1x ./...

# Hot-path smoke: the cursor-advance and fabric-release benches exercise
# the table-driven topology kernel and the lock-free release ring end to
# end (including the /arith oracle variants); run them explicitly so a
# rename never silently drops them from the net above.
go test -run '^$' -bench 'BenchmarkRouteCursor' -benchtime 1x ./internal/topology
go test -run '^$' -bench 'BenchmarkFabricRelease' -benchtime 1x ./internal/fabric
go test -run '^$' -bench 'BenchmarkFederationThroughput' -benchtime 1x ./internal/federation

# Scaling-study smoke: one shard-engine point of the multi-core sweep
# (BENCH_scaling.json), so the -cpu matrix harness keeps compiling and
# the shard fast path keeps running end to end.
go test -run '^$' -bench 'BenchmarkScalingEngines/FT3x8x8/batch4096/local/shard$' -benchtime 1x -cpu 2 .

# Config round-trip smoke: the generator's output must load through the
# server's own -config path (stdin form), end to end through both CLIs.
go run ./cmd/fttopo gen -planes 4 -levels 3 -children 4 -parents 4 -policy least-loaded \
	| go run ./cmd/ftserve -config - -validate

# Allocation-regression guard: the scheduling hot path must stay at zero
# allocations per request — including the incremental delta path, which
# the same test pins; -count=2 re-runs it against warm scratch state,
# which is where a regression would hide.
go test -run 'TestScheduleIntoZeroAllocs' -count=2 ./internal/core

# Incremental-vs-batch golden smoke: over an arrivals-only workload the
# delta path must stay bit-identical to batch replay, at both the core
# layer and through the registry spec the fabric uses.
go test -run 'TestIncrementalArrivalsOnlyGolden' ./internal/core
go test -run 'TestIncrementalSpecGolden' ./internal/sched

# Churn-workload smoke: one small seeded run of the batch-replay vs
# incremental comparison (EXPERIMENTS.md E20), so the -churn harness
# keeps running end to end without bench-grade runtime.
go run ./cmd/ftbench -churn -churn-rate 8 -churn-life 4 -churn-epochs 20 -churn-reuse 2 -seed 1

# Gray-failure smoke: one short flaky-link point plus the degraded-plane
# federation point (EXPERIMENTS.md E21). The harness itself enforces the
# invariants — zero unaccounted connections and repair attempts within
# the retry-budget bound — so a regression fails the run, not just the
# numbers.
go run ./cmd/ftbench -gray -fabric-levels 2 -fabric-children 4 -fabric-parents 4 \
	-fabric-clients 8 -fabric-open 2 -fabric-duration 300ms -gray-rates 0,0.2 -seed 1

# Admission-pipeline smoke: one short -admit sweep point per epoch size
# with the delivery pipeline, drain worker, and stats snapshots all on
# (EXPERIMENTS.md E22), so the closed-loop latency harness and every
# pipeline knob keep running end to end without bench-grade runtime.
go run ./cmd/ftbench -admit -fabric-duration 200ms -admit-epochs 1,8 \
	-admit-clients 4 -fabric-delivery-pipeline 2 -fabric-drain-worker \
	-fabric-stats-snapshots -seed 1

# Connect-enqueue allocation guard: the admission enqueue path (slot
# acquire + pooled ticket + queue append) must stay at zero allocations
# per request; -count=2 re-runs it against a warm ticket pool, which is
# where a pool regression would hide.
go test -run 'TestConnectEnqueueZeroAllocs' -count=2 ./internal/fabric

# Admission-pipeline race pass: the delivery worker, drain core, seqlock
# stats readers, and the cancellation-vs-pooled-ticket chaos test all
# prove exactly-once verdict delivery only under -race; -count=2 shakes
# out hand-off interleavings a single run can miss.
go test -race -count=2 -run 'TestDeliveryPipelineModes|TestDrainWorker|TestStatsSnapshots|TestCancelRacesPooledTickets|TestDrainRefusedCounter|TestReleaseRing' ./internal/fabric
