#!/usr/bin/env bash
# Tier-1 gate: build everything, vet, and run the full test suite with
# the race detector enabled. The race run is mandatory — internal/fabric
# mutates one shared link state from many goroutines, and its tests (plus
# the linkstate misuse tests) only prove their guarantees under -race.
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
